#ifndef GMR_CHECK_GEN_H_
#define GMR_CHECK_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/interval.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "expr/ast.h"
#include "expr/parser.h"
#include "gp/parameter_prior.h"
#include "tag/derivation.h"
#include "tag/grammar.h"

namespace gmr::check {

/// Configuration of the random-case generators: how to build well-typed
/// expression trees over a slot layout, and where to sample the evaluation
/// contexts and parameter vectors the oracles feed them.
struct GenConfig {
  int num_variables = 0;
  int num_parameters = 0;

  /// Per-slot sampling ranges for evaluation contexts. Unbounded sides are
  /// clamped to +/-kUnboundedSpan before sampling.
  analysis::DomainEnv domains;

  /// When non-empty, RandomParameters draws in-prior vectors (truncated
  /// Gaussian around the mean, exactly like GP parameter mutation) instead
  /// of uniform draws from `domains.parameters`.
  gp::ParameterPriors priors;

  /// Leaf display names, slot-indexed; leaves print as v<slot>/p<slot> when
  /// empty. Round-trip oracles parse through the matching symbol table.
  std::vector<std::string> variable_names;
  std::vector<std::string> parameter_names;

  /// Tree-shape knobs of the recursive generator.
  int max_depth = 6;
  double leaf_probability = 0.3;
  double unary_probability = 0.25;
  double constant_probability = 0.4;  // among leaves: constant vs slot leaf

  /// Sampling clamp applied to unbounded domain sides.
  static constexpr double kUnboundedSpan = 1e3;
};

/// GenConfig for the river task: the 12 variable / 17 parameter slot layout
/// with display names, the bounded LintDomains sampling ranges, and the
/// Table III priors.
GenConfig RiverGenConfig();

/// Symbol table matching the config's leaf names (for round-trip parsing).
expr::SymbolTable SymbolsOf(const GenConfig& config);

/// Derives the per-case seed for case `index` of a run: a SplitMix64-style
/// mix of run seed and index. Every generated artifact of a case depends
/// only on this value, which is what makes population generation
/// independent of thread count and lets a counterexample be replayed from
/// (run seed, index) alone.
std::uint64_t CaseSeed(std::uint64_t run_seed, std::uint64_t index);

/// One uniformly random value from `interval` (unbounded sides clamped to
/// GenConfig::kUnboundedSpan; a point interval returns the point).
double SampleInterval(const analysis::Interval& interval, Rng& rng);

/// A random well-typed expression tree over the config's slots.
expr::ExprPtr RandomExpr(const GenConfig& config, Rng& rng);

/// A parameter vector: in-prior (truncated Gaussian per Table III) when the
/// config carries priors, else uniform from domains.parameters.
std::vector<double> RandomParameters(const GenConfig& config, Rng& rng);

/// A variable vector sampled from domains.variables.
std::vector<double> RandomVariables(const GenConfig& config, Rng& rng);

/// Generates `count` expression trees, fanning out over `pool` (null or
/// single-threaded runs inline). Tree i is produced from a fresh
/// Rng(CaseSeed(seed, i)), so the result is byte-identical for every thread
/// count — the determinism audit in tests/check_test.cc pins this.
std::vector<expr::ExprPtr> GeneratePopulation(const GenConfig& config,
                                              std::size_t count,
                                              std::uint64_t seed,
                                              ThreadPool* pool);

/// Generates `count` random TAG derivations of about `target_size` nodes
/// from `grammar` via tag::GrowRandom, with the same per-index seeding
/// scheme (and therefore the same thread-count independence) as
/// GeneratePopulation.
std::vector<tag::DerivationPtr> GenerateDerivations(
    const tag::Grammar& grammar, int alpha_index, std::size_t count,
    std::size_t target_size, std::uint64_t seed, ThreadPool* pool);

}  // namespace gmr::check

#endif  // GMR_CHECK_GEN_H_
