#ifndef GMR_CHECK_ORACLES_H_
#define GMR_CHECK_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/gen.h"
#include "common/thread_pool.h"
#include "expr/ast.h"
#include "tag/grammar.h"

namespace gmr::check {

/// One generated test case: an expression tree plus the parameter vector it
/// is evaluated with, and the case seed that reproduces both (and the
/// evaluation contexts the oracles sample from it).
struct ExprCase {
  expr::ExprPtr tree;
  std::vector<double> parameters;
  std::uint64_t seed = 0;
};

/// Shared oracle configuration. The ground truth of every differential
/// oracle is the tree interpreter (expr::EvalExpr); each backend gets an
/// explicit ULP budget against it — see DESIGN.md §5.
struct OracleContext {
  const GenConfig* config = nullptr;

  /// Evaluation contexts sampled per case (variables from config domains).
  int contexts_per_case = 8;

  /// ULP budget of the native-JIT oracle (the C compiler may contract
  /// floating point slightly differently; 0 would be flaky across
  /// toolchains, matching the EXPECT_DOUBLE_EQ precedent in jit_test).
  std::uint64_t jit_ulps = 4;

  /// Saturation rate handed to the static gate under test. Finite so the
  /// gate's "provably saturating" reject rule is actually exercised.
  double saturation_rate = 1e6;
};

/// Verdict of one oracle on one case. `detail` is empty on success and
/// carries a human-readable counterexample description on failure.
struct OracleResult {
  bool ok = true;
  std::string detail;

  static OracleResult Pass() { return OracleResult{}; }
  static OracleResult Fail(std::string detail) {
    return OracleResult{false, std::move(detail)};
  }
};

/// Bytecode VM vs tree interpreter: bitwise agreement (0 ULP; both-NaN
/// counts as agreement) on every sampled context.
OracleResult CheckVmAgrees(const ExprCase& c, const OracleContext& ctx);

/// Simplify-then-VM vs tree interpreter. Compared bitwise when both sides
/// are finite; contexts where either side is non-finite are skipped, since
/// the min/max kernel is not NaN-symmetric and Simplify's commutative
/// canonicalization may legitimately flip which NaN propagates.
OracleResult CheckSimplifiedVmAgrees(const ExprCase& c,
                                     const OracleContext& ctx);

/// Native cc+dlopen JIT vs tree interpreter, within ctx.jit_ulps. Passes
/// vacuously when no C compiler is available; a compile failure is an
/// oracle failure (the generator only emits well-formed trees).
OracleResult CheckJitAgrees(const ExprCase& c, const OracleContext& ctx);

/// Batched VM vs tree interpreter, lane by lane: a full-width RunLanes call
/// over a SoA lane block (lane l = sampled variable context l paired with
/// an independently sampled parameter vector; lane 0 keeps the case's own
/// parameters) must agree bitwise (0 ULP) with the interpreter on every
/// lane. Divergence in one lane (NaN/Inf) must not perturb its neighbors.
OracleResult CheckBatchVmAgrees(const ExprCase& c, const OracleContext& ctx);

/// Batch-width invariance of the batched VM: evaluating the same lane
/// block at full width and lane-at-a-time (width 1) must produce bitwise
/// identical results — lanes are independent elementwise IEEE streams.
OracleResult CheckBatchWidthInvariant(const ExprCase& c,
                                      const OracleContext& ctx);

/// Generation-batched JIT vs tree interpreter, lane by lane within
/// ctx.jit_ulps, plus bitwise batch-width invariance of the compiled
/// symbol itself (full width vs width 1: the TU is built with
/// -ffp-contract=off precisely so the vector body and scalar epilogue
/// perform identical IEEE operations). Passes vacuously without a C
/// compiler; a compile failure is an oracle failure. Uses a private
/// session and circuit breaker so fuzz volume never poisons run-wide
/// JIT state.
OracleResult CheckBatchJitAgrees(const ExprCase& c, const OracleContext& ctx);

/// printer -> parser -> printer: the printed form must reparse and print to
/// identical text, and the reparsed tree must evaluate bitwise-identically
/// on every sampled context. (Structural identity is NOT required: -1.5
/// reparses as Neg(1.5).)
OracleResult CheckRoundTrip(const ExprCase& c, const OracleContext& ctx);

/// Checkpoint codec round trip (ckpt/serialize.h): SerializeExpr →
/// ParseExprLine must be an *exact* fixpoint — the parsed tree
/// re-serializes to the identical line, evaluates bitwise-identically
/// (0 ULP) on every sampled context, and the case's parameter vector
/// survives SerializeDoubles → ParseDoubles with its exact bit patterns.
/// Stricter than `roundtrip`: the pretty printer may be structurally lossy,
/// the checkpoint codec may not (resume determinism needs NodeCount-exact
/// trees).
OracleResult CheckCkptRoundTrip(const ExprCase& c, const OracleContext& ctx);

/// Interval soundness: EvaluateInterval over the config's variable domains
/// (parameters pinned to the case's actual values) must contain every
/// sampled runtime value, and may only produce NaN where the maybe_nan bit
/// is set. This is the "clean verdict never precedes numerical divergence"
/// half of gate soundness: an interval proved finite means no sampled
/// evaluation may be non-finite.
OracleResult CheckIntervalSound(const ExprCase& c, const OracleContext& ctx);

/// Reject-gate soundness: when AnalyzeCandidate rejects the case (over the
/// same pinned-parameter domains), every sampled runtime value must
/// actually be non-finite or at/above ctx.saturation_rate — i.e. the
/// integrator would have produced kNonFiniteDerivative/kClampSaturated
/// anyway, so rejecting without integrating changes no outcome.
OracleResult CheckGateSound(const ExprCase& c, const OracleContext& ctx);

/// Activity-pass soundness: AnalyzeActivity over the config's variable
/// domains and parameter *boxes* (so the verdict quantifies over the whole
/// admissible range, not the case's pinned values) reports the parameter
/// slots that provably cannot influence the tree. Perturbing every such
/// slot to an independent in-box value must leave evaluation bitwise
/// identical on every sampled context — the exact guarantee calibrators
/// rely on when they freeze inactive dimensions.
OracleResult CheckActivitySound(const ExprCase& c, const OracleContext& ctx);

/// Reverse-mode gradient check (grad/tape.h): on every sampled context the
/// tape's forward value must agree bitwise (0 ULP) with the tree
/// interpreter — pruned and unpruned alike — the activity-pruned tape's
/// adjoints must match the unpruned tape's exactly (with every
/// provably-inactive parameter's adjoint exactly 0.0), and each unpruned
/// parameter adjoint must agree with central finite differences within a
/// relative band that widens with the FD cancellation noise floor. Slots
/// where the FD estimates disagree among themselves (clamp kinks, band
/// boundaries — places where a secant slope is meaningless) are skipped; a
/// non-finite adjoint where FD is finite and self-consistent is a failure.
OracleResult CheckGradcheck(const ExprCase& c, const OracleContext& ctx);

/// Registry of the expression-case oracles above, keyed by the short names
/// used in fuzz property filters and corpus `# property:` headers.
using ExprOracle = OracleResult (*)(const ExprCase&, const OracleContext&);

/// All registered oracle names, in fixed execution order:
/// vm, simplify, jit, roundtrip, ckpt_roundtrip, interval, gate, activity,
/// batch_vm, batch_width, batch_jit, gradcheck.
std::vector<std::string> ExprOracleNames();

/// Looks an oracle up by name; nullptr when unknown.
ExprOracle FindExprOracle(const std::string& name);

/// Derivation determinism: generating `count` derivations of about
/// `target_size` nodes from (grammar, seed) must produce byte-identical
/// expanded phenotypes whether fanned out over `pool` or run inline, every
/// derivation must Validate, and re-expanding the same derivation must be
/// a pure function.
OracleResult CheckDerivationDeterministic(const tag::Grammar& grammar,
                                          int alpha_index, std::size_t count,
                                          std::size_t target_size,
                                          std::uint64_t seed,
                                          ThreadPool* pool);

/// Whole-generation checkpoint fixpoint: a generated population of `count`
/// derivations, each paired with a random parameter vector, must survive
/// the checkpoint codec exactly — every derivation parses back from
/// SerializeDerivation, Validates against the grammar, re-serializes to
/// the identical line, and expands to a byte-identical phenotype; every
/// parameter vector round-trips bit for bit. This is the population half
/// of the resume contract (ckpt_roundtrip covers single expressions).
OracleResult CheckGenerationRoundTrip(const tag::Grammar& grammar,
                                      int alpha_index, std::size_t count,
                                      std::size_t target_size,
                                      std::uint64_t seed, ThreadPool* pool);

}  // namespace gmr::check

#endif  // GMR_CHECK_ORACLES_H_
