#include "check/oracles.h"

#include <cmath>
#include <sstream>

#include "analysis/static_gate.h"
#include "common/metrics.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "expr/parser.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "tag/derivation.h"

namespace gmr::check {
namespace {

/// Samples the per-case evaluation contexts. Derived from the case seed
/// (offset so the stream differs from the one that generated the tree), so
/// a counterexample replays from the seed alone.
std::vector<std::vector<double>> SampleContexts(const ExprCase& c,
                                                const OracleContext& ctx) {
  Rng rng(CaseSeed(c.seed, 0x5eed5eedULL));
  std::vector<std::vector<double>> contexts;
  contexts.reserve(static_cast<std::size_t>(ctx.contexts_per_case));
  for (int i = 0; i < ctx.contexts_per_case; ++i) {
    contexts.push_back(RandomVariables(*ctx.config, rng));
  }
  return contexts;
}

expr::EvalContext MakeEvalContext(const std::vector<double>& vars,
                                  const std::vector<double>& params) {
  expr::EvalContext ec;
  ec.variables = vars.data();
  ec.num_variables = vars.size();
  ec.parameters = params.data();
  ec.num_parameters = params.size();
  return ec;
}

std::string DescribeDisagreement(const char* backend, const ExprCase& c,
                                 const std::vector<double>& vars, double got,
                                 double want) {
  std::ostringstream out;
  out.precision(17);
  out << backend << " disagrees on " << expr::ToString(*c.tree) << ": got "
      << got << ", interpreter " << want << " (ulps "
      << UlpDistance(got, want) << "), vars [";
  for (std::size_t i = 0; i < vars.size(); ++i) {
    out << (i ? ", " : "") << vars[i];
  }
  out << "], seed " << c.seed;
  return out.str();
}

/// The analysis environment of a case: config variable domains, parameters
/// pinned to the case's actual values. Pinning keeps the interval claims
/// checkable against the very vector the runtime uses (and keeps corpus
/// replays sound even for parameter vectors outside the priors).
analysis::DomainEnv CaseDomains(const ExprCase& c, const OracleContext& ctx) {
  analysis::DomainEnv env;
  env.variables = ctx.config->domains.variables;
  env.parameters.reserve(c.parameters.size());
  for (double p : c.parameters) {
    env.parameters.push_back(analysis::Interval::Point(p));
  }
  return env;
}

}  // namespace

OracleResult CheckVmAgrees(const ExprCase& c, const OracleContext& ctx) {
  const expr::CompiledProgram program = expr::Compile(*c.tree);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program.Run(ec);
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(DescribeDisagreement("vm", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckSimplifiedVmAgrees(const ExprCase& c,
                                     const OracleContext& ctx) {
  const expr::ExprPtr simplified = expr::Simplify(c.tree);
  const expr::CompiledProgram program = expr::Compile(*simplified);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program.Run(ec);
    // Finite-only comparison: commutative canonicalization may reorder
    // min/max operands, whose kernel is not NaN-symmetric.
    if (!std::isfinite(want) || !std::isfinite(got)) continue;
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(
          DescribeDisagreement("simplified-vm", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckJitAgrees(const ExprCase& c, const OracleContext& ctx) {
  if (!expr::JitAvailable()) return OracleResult::Pass();
  std::string error;
  const auto program = expr::JitProgram::Compile(*c.tree, &error);
  if (program == nullptr) {
    return OracleResult::Fail("jit compile failed on " +
                              expr::ToString(*c.tree) + ": " + error);
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program->Run(ec);
    if (!WithinUlps(got, want, ctx.jit_ulps)) {
      return OracleResult::Fail(
          DescribeDisagreement("jit", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckRoundTrip(const ExprCase& c, const OracleContext& ctx) {
  const std::string once = expr::ToString(*c.tree);
  const expr::SymbolTable symbols = SymbolsOf(*ctx.config);
  const expr::ParseResult reparsed = expr::Parse(once, symbols);
  if (!reparsed.ok()) {
    return OracleResult::Fail("printed form does not reparse: '" + once +
                              "': " + reparsed.error);
  }
  const std::string twice = expr::ToString(*reparsed.expr);
  if (twice != once) {
    return OracleResult::Fail("print is not a parser fixpoint: '" + once +
                              "' reprints as '" + twice + "'");
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = expr::EvalExpr(*reparsed.expr, ec);
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(
          DescribeDisagreement("reparsed tree", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckIntervalSound(const ExprCase& c, const OracleContext& ctx) {
  const analysis::DomainEnv env = CaseDomains(c, ctx);
  const analysis::Interval interval = analysis::EvaluateInterval(*c.tree, env);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double v = expr::EvalExpr(*c.tree, ec);
    if (std::isnan(v)) {
      if (!interval.maybe_nan) {
        return OracleResult::Fail(
            "interval " + analysis::FormatInterval(interval) +
            " claims NaN-free but " + expr::ToString(*c.tree) +
            " evaluated to NaN (seed " + std::to_string(c.seed) + ")");
      }
      continue;
    }
    if (!interval.Contains(v)) {
      std::ostringstream out;
      out.precision(17);
      out << "interval " << analysis::FormatInterval(interval)
          << " does not contain runtime value " << v << " of "
          << expr::ToString(*c.tree) << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckGateSound(const ExprCase& c, const OracleContext& ctx) {
  analysis::StaticGateConfig gate;
  gate.enabled = true;
  gate.domains = CaseDomains(c, ctx);
  gate.saturation_rate = ctx.saturation_rate;
  const analysis::StaticVerdict verdict =
      analysis::AnalyzeCandidate({c.tree}, gate);
  if (!verdict.reject) return OracleResult::Pass();
  // The gate claims doom is a theorem: every reachable value is -inf, or
  // every reachable value saturates the clamp. Sampled runtime values must
  // bear that out.
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double v = expr::EvalExpr(*c.tree, ec);
    if (std::isfinite(v) && v < ctx.saturation_rate) {
      std::ostringstream out;
      out.precision(17);
      out << "gate rejected (" << verdict.reason << ") but "
          << expr::ToString(*c.tree) << " evaluated to ordinary " << v
          << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

namespace {

struct NamedOracle {
  const char* name;
  ExprOracle oracle;
};

constexpr NamedOracle kExprOracles[] = {
    {"vm", CheckVmAgrees},         {"simplify", CheckSimplifiedVmAgrees},
    {"jit", CheckJitAgrees},       {"roundtrip", CheckRoundTrip},
    {"interval", CheckIntervalSound}, {"gate", CheckGateSound},
};

}  // namespace

std::vector<std::string> ExprOracleNames() {
  std::vector<std::string> names;
  for (const NamedOracle& entry : kExprOracles) {
    names.emplace_back(entry.name);
  }
  return names;
}

ExprOracle FindExprOracle(const std::string& name) {
  for (const NamedOracle& entry : kExprOracles) {
    if (name == entry.name) return entry.oracle;
  }
  return nullptr;
}

OracleResult CheckDerivationDeterministic(const tag::Grammar& grammar,
                                          int alpha_index, std::size_t count,
                                          std::size_t target_size,
                                          std::uint64_t seed,
                                          ThreadPool* pool) {
  const auto render = [&](const std::vector<tag::DerivationPtr>& population) {
    std::string out;
    for (const auto& derivation : population) {
      for (const auto& e : tag::ExpandToExpressions(grammar, *derivation)) {
        out += expr::ToSExpression(*e);
        out += '\n';
      }
      out += '\n';
    }
    return out;
  };
  const auto pooled =
      GenerateDerivations(grammar, alpha_index, count, target_size, seed, pool);
  const auto inline_run = GenerateDerivations(grammar, alpha_index, count,
                                              target_size, seed, nullptr);
  for (const auto& derivation : pooled) {
    std::string error;
    if (!tag::Validate(grammar, *derivation, &error)) {
      return OracleResult::Fail("generated derivation fails Validate: " +
                                error + " (seed " + std::to_string(seed) +
                                ")");
    }
  }
  const std::string a = render(pooled);
  if (a != render(inline_run)) {
    return OracleResult::Fail(
        "derivation population differs between pooled and inline generation "
        "(seed " +
        std::to_string(seed) + ")");
  }
  // Expansion must be a pure function of the derivation.
  if (a != render(pooled)) {
    return OracleResult::Fail("re-expanding the same derivations changed the "
                              "phenotype (seed " +
                              std::to_string(seed) + ")");
  }
  return OracleResult::Pass();
}

}  // namespace gmr::check
