#include "check/oracles.h"

#include <cmath>
#include <sstream>

#include "analysis/activity.h"
#include "analysis/static_gate.h"
#include "ckpt/serialize.h"
#include "common/metrics.h"
#include "expr/batch_jit.h"
#include "expr/batch_vm.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "expr/parser.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "grad/tape.h"
#include "tag/derivation.h"

namespace gmr::check {
namespace {

/// Samples the per-case evaluation contexts. Derived from the case seed
/// (offset so the stream differs from the one that generated the tree), so
/// a counterexample replays from the seed alone.
std::vector<std::vector<double>> SampleContexts(const ExprCase& c,
                                                const OracleContext& ctx) {
  Rng rng(CaseSeed(c.seed, 0x5eed5eedULL));
  std::vector<std::vector<double>> contexts;
  contexts.reserve(static_cast<std::size_t>(ctx.contexts_per_case));
  for (int i = 0; i < ctx.contexts_per_case; ++i) {
    contexts.push_back(RandomVariables(*ctx.config, rng));
  }
  return contexts;
}

expr::EvalContext MakeEvalContext(const std::vector<double>& vars,
                                  const std::vector<double>& params) {
  expr::EvalContext ec;
  ec.variables = vars.data();
  ec.num_variables = vars.size();
  ec.parameters = params.data();
  ec.num_parameters = params.size();
  return ec;
}

std::string DescribeDisagreement(const char* backend, const ExprCase& c,
                                 const std::vector<double>& vars, double got,
                                 double want) {
  std::ostringstream out;
  out.precision(17);
  out << backend << " disagrees on " << expr::ToString(*c.tree) << ": got "
      << got << ", interpreter " << want << " (ulps "
      << UlpDistance(got, want) << "), vars [";
  for (std::size_t i = 0; i < vars.size(); ++i) {
    out << (i ? ", " : "") << vars[i];
  }
  out << "], seed " << c.seed;
  return out.str();
}

/// SoA lane block for the batch oracles: lane l pairs sampled variable
/// context l with an independently sampled parameter vector (lane 0 keeps
/// the case's own parameters, so shrunk corpus cases stay meaningful),
/// exercising both stride axes the batched rollouts use.
struct LaneBlock {
  std::size_t width = 0;
  std::size_t num_variables = 0;
  std::size_t num_parameters = 0;
  /// Strided layouts: [slot * width + lane].
  std::vector<double> vars;
  std::vector<double> params;
  /// Per-lane AoS copies (== the width-1 strided layout of that lane).
  std::vector<std::vector<double>> lane_vars;
  std::vector<std::vector<double>> lane_params;

  expr::BatchEvalContext Context() const {
    expr::BatchEvalContext bc;
    bc.variables = vars.data();
    bc.num_variables = num_variables;
    bc.parameters = params.data();
    bc.num_parameters = num_parameters;
    bc.width = width;
    return bc;
  }

  expr::BatchEvalContext LaneContext(std::size_t lane) const {
    expr::BatchEvalContext bc;
    bc.variables = lane_vars[lane].data();
    bc.num_variables = num_variables;
    bc.parameters = lane_params[lane].data();
    bc.num_parameters = num_parameters;
    bc.width = 1;
    return bc;
  }
};

LaneBlock MakeLaneBlock(const ExprCase& c, const OracleContext& ctx) {
  LaneBlock block;
  block.lane_vars = SampleContexts(c, ctx);
  block.width = block.lane_vars.size();
  Rng rng(CaseSeed(c.seed, 0xba7c41a9e5ULL));
  block.lane_params.reserve(block.width);
  for (std::size_t lane = 0; lane < block.width; ++lane) {
    std::vector<double> params =
        lane == 0 ? c.parameters : RandomParameters(*ctx.config, rng);
    // Shrunk corpus cases may carry a different parameter count than the
    // config generates; pin every lane to the case's own count.
    params.resize(c.parameters.size(), 0.0);
    block.lane_params.push_back(std::move(params));
  }
  block.num_variables = block.width == 0 ? 0 : block.lane_vars[0].size();
  block.num_parameters = c.parameters.size();
  block.vars.resize(block.num_variables * block.width);
  block.params.resize(block.num_parameters * block.width);
  for (std::size_t lane = 0; lane < block.width; ++lane) {
    for (std::size_t s = 0; s < block.num_variables; ++s) {
      block.vars[s * block.width + lane] = block.lane_vars[lane][s];
    }
    for (std::size_t s = 0; s < block.num_parameters; ++s) {
      block.params[s * block.width + lane] = block.lane_params[lane][s];
    }
  }
  return block;
}

/// The analysis environment of a case: config variable domains, parameters
/// pinned to the case's actual values. Pinning keeps the interval claims
/// checkable against the very vector the runtime uses (and keeps corpus
/// replays sound even for parameter vectors outside the priors).
analysis::DomainEnv CaseDomains(const ExprCase& c, const OracleContext& ctx) {
  analysis::DomainEnv env;
  env.variables = ctx.config->domains.variables;
  env.parameters.reserve(c.parameters.size());
  for (double p : c.parameters) {
    env.parameters.push_back(analysis::Interval::Point(p));
  }
  return env;
}

}  // namespace

OracleResult CheckVmAgrees(const ExprCase& c, const OracleContext& ctx) {
  const expr::CompiledProgram program = expr::Compile(*c.tree);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program.Run(ec);
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(DescribeDisagreement("vm", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckSimplifiedVmAgrees(const ExprCase& c,
                                     const OracleContext& ctx) {
  const expr::ExprPtr simplified = expr::Simplify(c.tree);
  const expr::CompiledProgram program = expr::Compile(*simplified);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program.Run(ec);
    // Finite-only comparison: commutative canonicalization may reorder
    // min/max operands, whose kernel is not NaN-symmetric.
    if (!std::isfinite(want) || !std::isfinite(got)) continue;
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(
          DescribeDisagreement("simplified-vm", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckJitAgrees(const ExprCase& c, const OracleContext& ctx) {
  if (!expr::JitAvailable()) return OracleResult::Pass();
  std::string error;
  const auto program = expr::JitProgram::Compile(*c.tree, &error);
  if (program == nullptr) {
    return OracleResult::Fail("jit compile failed on " +
                              expr::ToString(*c.tree) + ": " + error);
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = program->Run(ec);
    if (!WithinUlps(got, want, ctx.jit_ulps)) {
      return OracleResult::Fail(
          DescribeDisagreement("jit", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckBatchVmAgrees(const ExprCase& c, const OracleContext& ctx) {
  const expr::BatchProgram program = expr::CompileBatch(*c.tree);
  const LaneBlock block = MakeLaneBlock(c, ctx);
  if (block.width == 0) return OracleResult::Pass();
  std::vector<double> out(block.width, 0.0);
  program.RunLanes(block.Context(), out.data());
  for (std::size_t lane = 0; lane < block.width; ++lane) {
    const auto ec =
        MakeEvalContext(block.lane_vars[lane], block.lane_params[lane]);
    const double want = expr::EvalExpr(*c.tree, ec);
    if (!WithinUlps(out[lane], want, 0)) {
      return OracleResult::Fail(DescribeDisagreement(
          "batch-vm", c, block.lane_vars[lane], out[lane], want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckBatchWidthInvariant(const ExprCase& c,
                                      const OracleContext& ctx) {
  const expr::BatchProgram program = expr::CompileBatch(*c.tree);
  const LaneBlock block = MakeLaneBlock(c, ctx);
  std::vector<double> full(block.width, 0.0);
  if (block.width > 0) program.RunLanes(block.Context(), full.data());
  for (std::size_t lane = 0; lane < block.width; ++lane) {
    double narrow = 0.0;
    program.RunLanes(block.LaneContext(lane), &narrow);
    if (!WithinUlps(narrow, full[lane], 0)) {
      std::ostringstream out;
      out.precision(17);
      out << "batch-vm width-1 result " << narrow << " differs from lane "
          << lane << " of the width-" << block.width << " run " << full[lane]
          << " on " << expr::ToString(*c.tree) << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckBatchJitAgrees(const ExprCase& c, const OracleContext& ctx) {
  if (!expr::JitAvailable()) return OracleResult::Pass();
  // Private session + breaker: fuzz-volume compiles must never trip the
  // run-wide breaker, and the session dlcloses when the case ends.
  expr::JitCircuitBreaker breaker;
  expr::BatchJitSession session(&breaker);
  const auto fns = session.CompileBatch({c.tree.get()});
  if (fns[0] == nullptr) {
    return OracleResult::Fail("batch jit compile failed on " +
                              expr::ToString(*c.tree));
  }
  const LaneBlock block = MakeLaneBlock(c, ctx);
  std::vector<double> full(block.width, 0.0);
  if (block.width > 0) {
    fns[0](block.vars.data(), block.params.data(), full.data(),
           static_cast<long>(block.width));
  }
  for (std::size_t lane = 0; lane < block.width; ++lane) {
    const auto ec =
        MakeEvalContext(block.lane_vars[lane], block.lane_params[lane]);
    const double want = expr::EvalExpr(*c.tree, ec);
    if (!WithinUlps(full[lane], want, ctx.jit_ulps)) {
      return OracleResult::Fail(DescribeDisagreement(
          "batch-jit", c, block.lane_vars[lane], full[lane], want));
    }
    // Width invariance of the compiled symbol itself must be exact: the TU
    // is built with -ffp-contract=off so the vectorized body and the
    // scalar epilogue perform identical IEEE operations per lane.
    double narrow = 0.0;
    fns[0](block.lane_vars[lane].data(), block.lane_params[lane].data(),
           &narrow, 1);
    if (!WithinUlps(narrow, full[lane], 0)) {
      std::ostringstream out;
      out.precision(17);
      out << "batch-jit width-1 result " << narrow << " differs from lane "
          << lane << " of the width-" << block.width << " run " << full[lane]
          << " on " << expr::ToString(*c.tree) << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckRoundTrip(const ExprCase& c, const OracleContext& ctx) {
  const std::string once = expr::ToString(*c.tree);
  const expr::SymbolTable symbols = SymbolsOf(*ctx.config);
  const expr::ParseResult reparsed = expr::Parse(once, symbols);
  if (!reparsed.ok()) {
    return OracleResult::Fail("printed form does not reparse: '" + once +
                              "': " + reparsed.error);
  }
  const std::string twice = expr::ToString(*reparsed.expr);
  if (twice != once) {
    return OracleResult::Fail("print is not a parser fixpoint: '" + once +
                              "' reprints as '" + twice + "'");
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = expr::EvalExpr(*reparsed.expr, ec);
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(
          DescribeDisagreement("reparsed tree", c, vars, got, want));
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckCkptRoundTrip(const ExprCase& c, const OracleContext& ctx) {
  const std::string once = ckpt::SerializeExpr(*c.tree);
  std::string error;
  const expr::ExprPtr reparsed = ckpt::ParseExprLine(once, &error);
  if (reparsed == nullptr) {
    return OracleResult::Fail("ckpt line does not reparse: '" + once +
                              "': " + error);
  }
  const std::string twice = ckpt::SerializeExpr(*reparsed);
  if (twice != once) {
    return OracleResult::Fail("ckpt codec is not an exact fixpoint: '" +
                              once + "' re-serializes as '" + twice + "'");
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double got = expr::EvalExpr(*reparsed, ec);
    if (!WithinUlps(got, want, 0)) {
      return OracleResult::Fail(
          DescribeDisagreement("ckpt-reparsed tree", c, vars, got, want));
    }
  }
  std::vector<double> parameters;
  if (!ckpt::ParseDoubles(ckpt::SerializeDoubles(c.parameters),
                          &parameters) ||
      parameters.size() != c.parameters.size()) {
    return OracleResult::Fail("parameter vector does not round-trip (seed " +
                              std::to_string(c.seed) + ")");
  }
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    // Bit compare, not ==: NaN payloads and signed zeros must survive too.
    if (ckpt::HexDouble(parameters[i]) != ckpt::HexDouble(c.parameters[i])) {
      return OracleResult::Fail(
          "parameter " + std::to_string(i) + " bits changed in round trip (" +
          ckpt::HexDouble(c.parameters[i]) + " -> " +
          ckpt::HexDouble(parameters[i]) + ", seed " + std::to_string(c.seed) +
          ")");
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckIntervalSound(const ExprCase& c, const OracleContext& ctx) {
  const analysis::DomainEnv env = CaseDomains(c, ctx);
  const analysis::Interval interval = analysis::EvaluateInterval(*c.tree, env);
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double v = expr::EvalExpr(*c.tree, ec);
    if (std::isnan(v)) {
      if (!interval.maybe_nan) {
        return OracleResult::Fail(
            "interval " + analysis::FormatInterval(interval) +
            " claims NaN-free but " + expr::ToString(*c.tree) +
            " evaluated to NaN (seed " + std::to_string(c.seed) + ")");
      }
      continue;
    }
    if (!interval.Contains(v)) {
      std::ostringstream out;
      out.precision(17);
      out << "interval " << analysis::FormatInterval(interval)
          << " does not contain runtime value " << v << " of "
          << expr::ToString(*c.tree) << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckGateSound(const ExprCase& c, const OracleContext& ctx) {
  analysis::StaticGateConfig gate;
  gate.enabled = true;
  gate.domains = CaseDomains(c, ctx);
  gate.saturation_rate = ctx.saturation_rate;
  const analysis::StaticVerdict verdict =
      analysis::AnalyzeCandidate({c.tree}, gate);
  if (!verdict.reject) return OracleResult::Pass();
  // The gate claims doom is a theorem: every reachable value is -inf, or
  // every reachable value saturates the clamp. Sampled runtime values must
  // bear that out.
  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double v = expr::EvalExpr(*c.tree, ec);
    if (std::isfinite(v) && v < ctx.saturation_rate) {
      std::ostringstream out;
      out.precision(17);
      out << "gate rejected (" << verdict.reason << ") but "
          << expr::ToString(*c.tree) << " evaluated to ordinary " << v
          << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckActivitySound(const ExprCase& c, const OracleContext& ctx) {
  // Activity is analyzed over the config's parameter *boxes* (not the
  // case's pinned values): an inactive verdict then claims independence
  // from the slot across its whole admissible range, which is exactly what
  // the perturbation below exercises. Slots beyond the declared boxes are
  // modeled as unbounded (conservative: they are never reported inactive
  // through a pruning guard that needs finiteness).
  analysis::DomainEnv env;
  env.variables = ctx.config->domains.variables;
  env.parameters = ctx.config->domains.parameters;
  env.parameters.resize(c.parameters.size(), analysis::Interval::All());
  const analysis::Activity activity = analysis::AnalyzeActivity(*c.tree, env);
  const std::vector<int> inactive = analysis::InactiveParameters(
      activity, static_cast<int>(c.parameters.size()));
  if (inactive.empty()) return OracleResult::Pass();
  // Perturb every provably-inactive slot to an independent in-box value;
  // the evaluation must not move by a single bit on any sampled context.
  Rng rng(CaseSeed(c.seed, 0xac7111f7ULL));
  std::vector<double> perturbed = c.parameters;
  for (const int slot : inactive) {
    perturbed[static_cast<std::size_t>(slot)] =
        SampleInterval(env.parameters[static_cast<std::size_t>(slot)], rng);
  }
  for (const auto& vars : SampleContexts(c, ctx)) {
    const double want =
        expr::EvalExpr(*c.tree, MakeEvalContext(vars, c.parameters));
    const double got =
        expr::EvalExpr(*c.tree, MakeEvalContext(vars, perturbed));
    if (ckpt::HexDouble(got) != ckpt::HexDouble(want)) {
      std::ostringstream out;
      out.precision(17);
      out << "perturbing provably-inactive parameter slots [";
      for (std::size_t i = 0; i < inactive.size(); ++i) {
        out << (i ? ", " : "") << inactive[i];
      }
      out << "] changed " << expr::ToString(*c.tree) << " from " << want
          << " to " << got << " (seed " << c.seed << ")";
      return OracleResult::Fail(out.str());
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckGradcheck(const ExprCase& c, const OracleContext& ctx) {
  const std::size_t num_params = c.parameters.size();
  // Same env model as the activity oracle: variable domains from the
  // config, parameter *boxes* (so pruning verdicts quantify over the
  // admissible range), unbounded beyond the declared slots.
  analysis::DomainEnv env;
  env.variables = ctx.config->domains.variables;
  env.parameters = ctx.config->domains.parameters;
  env.parameters.resize(num_params, analysis::Interval::All());
  const int num_vars = static_cast<int>(env.variables.size());
  const grad::Tape tape(*c.tree, static_cast<int>(num_params), num_vars,
                        nullptr);
  const grad::Tape pruned(*c.tree, static_cast<int>(num_params), num_vars,
                          &env);
  const std::vector<int> inactive = analysis::InactiveParameters(
      analysis::AnalyzeActivity(*c.tree, env),
      static_cast<int>(num_params));
  std::vector<double> values(tape.size());
  std::vector<double> pruned_values(pruned.size());
  std::vector<double> cotangents(std::max(tape.size(), pruned.size()));
  std::vector<double> adj(num_params);
  std::vector<double> state_adj(static_cast<std::size_t>(num_vars));
  std::vector<double> pruned_adj(num_params);
  std::vector<double> pruned_state_adj(static_cast<std::size_t>(num_vars));

  const auto fail = [&c](const std::string& what) {
    std::ostringstream out;
    out.precision(17);
    out << what << " on " << expr::ToString(*c.tree) << " (seed " << c.seed
        << ")";
    return OracleResult::Fail(out.str());
  };

  for (const auto& vars : SampleContexts(c, ctx)) {
    const auto ec = MakeEvalContext(vars, c.parameters);
    const double want = expr::EvalExpr(*c.tree, ec);
    const double f0 = tape.Forward(ec, values.data());
    if (ckpt::HexDouble(f0) != ckpt::HexDouble(want)) {
      return fail("tape forward value disagrees with interpreter: got " +
                  std::to_string(f0) + ", want " + std::to_string(want));
    }
    const double pruned_f0 = pruned.Forward(ec, pruned_values.data());
    if (ckpt::HexDouble(pruned_f0) != ckpt::HexDouble(want)) {
      return fail("pruned tape forward value disagrees with interpreter");
    }
    std::fill(adj.begin(), adj.end(), 0.0);
    std::fill(state_adj.begin(), state_adj.end(), 0.0);
    tape.Reverse(values.data(), 1.0, adj.data(), state_adj.data(),
                 cotangents.data());
    std::fill(pruned_adj.begin(), pruned_adj.end(), 0.0);
    std::fill(pruned_state_adj.begin(), pruned_state_adj.end(), 0.0);
    pruned.Reverse(pruned_values.data(), 1.0, pruned_adj.data(),
                   pruned_state_adj.data(), cotangents.data());
    // Zero-gradient guarantee: a provably-inactive parameter's adjoint is
    // exactly 0.0 on the pruned tape, whatever the runtime values did.
    for (const int slot : inactive) {
      if (pruned_adj[static_cast<std::size_t>(slot)] != 0.0) {
        return fail("activity-pruned parameter slot " +
                    std::to_string(slot) + " has nonzero adjoint");
      }
    }
    // Finite-difference band check per parameter slot.
    if (!std::isfinite(f0) || std::abs(f0) > 1e100) continue;
    std::vector<double> probe = c.parameters;
    for (std::size_t i = 0; i < num_params; ++i) {
      const double p = c.parameters[i];
      const double h = 1e-6 * std::max(std::abs(p), 1.0);
      const auto eval_at = [&](double value) {
        probe[i] = value;
        const double f = expr::EvalExpr(*c.tree, MakeEvalContext(vars, probe));
        probe[i] = p;
        return f;
      };
      const double fp = eval_at(p + h);
      const double fm = eval_at(p - h);
      const double fp2 = eval_at(p + 0.5 * h);
      const double fm2 = eval_at(p - 0.5 * h);
      if (!std::isfinite(fp) || !std::isfinite(fm) || !std::isfinite(fp2) ||
          !std::isfinite(fm2) || std::abs(fp) > 1e100 ||
          std::abs(fm) > 1e100) {
        continue;  // probe left the representable regime; FD is meaningless
      }
      const double noise = (std::abs(f0) + std::abs(fp) + std::abs(fm)) *
                           1e-16 / h;
      const double central = (fp - fm) / (2.0 * h);
      const double central_half = (fp2 - fm2) / h;
      const double right = (fp - f0) / h;
      const double left = (f0 - fm) / h;
      const auto tol = [&](double est) {
        return 5e-3 * std::max(std::abs(adj[i]), std::abs(est)) + 1e-6 +
               1e3 * noise;
      };
      // Self-consistency: when halving h moves the central estimate by
      // more than the acceptance band, the function is kinked (a clamp or
      // protection-band boundary sits inside the stencil) and a secant
      // proves nothing either way.
      if (std::abs(central - central_half) > tol(central)) continue;
      // Both tapes face the same FD band. Strict pruned==unpruned equality
      // would be wrong: pruning drops mathematically-zero flows that the
      // unpruned tape computes with rounding residue (e.g. the w/p and
      // w*p/(p*p) halves of d(p/p) round differently), so the pruned
      // adjoint can be the *more* exact of the two.
      for (const double* candidate : {&adj[i], &pruned_adj[i]}) {
        const char* which = candidate == &adj[i] ? "" : "pruned ";
        if (!std::isfinite(*candidate)) {
          return fail(std::string("non-finite ") + which + "adjoint for slot " +
                      std::to_string(i) +
                      " where finite differences are finite and consistent");
        }
        const double a = *candidate;
        const bool accepted =
            std::abs(a - central) <= tol(central) ||
            std::abs(a - central_half) <= tol(central_half) ||
            std::abs(a - right) <= tol(right) ||
            std::abs(a - left) <= tol(left);
        if (!accepted) {
          std::ostringstream out;
          out.precision(17);
          out << which << "adjoint " << a << " for slot " << i
              << " disagrees with finite differences (central " << central
              << ", half-step " << central_half << ", right " << right
              << ", left " << left << ", h " << h << ") on "
              << expr::ToString(*c.tree) << ", vars [";
          for (std::size_t v = 0; v < vars.size(); ++v) {
            out << (v ? ", " : "") << vars[v];
          }
          out << "], seed " << c.seed;
          return OracleResult::Fail(out.str());
        }
      }
    }
  }
  return OracleResult::Pass();
}

namespace {

struct NamedOracle {
  const char* name;
  ExprOracle oracle;
};

constexpr NamedOracle kExprOracles[] = {
    {"vm", CheckVmAgrees},         {"simplify", CheckSimplifiedVmAgrees},
    {"jit", CheckJitAgrees},       {"roundtrip", CheckRoundTrip},
    {"ckpt_roundtrip", CheckCkptRoundTrip},
    {"interval", CheckIntervalSound}, {"gate", CheckGateSound},
    {"activity", CheckActivitySound},
    {"batch_vm", CheckBatchVmAgrees},
    {"batch_width", CheckBatchWidthInvariant},
    {"batch_jit", CheckBatchJitAgrees},
    {"gradcheck", CheckGradcheck},
};

}  // namespace

std::vector<std::string> ExprOracleNames() {
  std::vector<std::string> names;
  for (const NamedOracle& entry : kExprOracles) {
    names.emplace_back(entry.name);
  }
  return names;
}

ExprOracle FindExprOracle(const std::string& name) {
  for (const NamedOracle& entry : kExprOracles) {
    if (name == entry.name) return entry.oracle;
  }
  return nullptr;
}

OracleResult CheckDerivationDeterministic(const tag::Grammar& grammar,
                                          int alpha_index, std::size_t count,
                                          std::size_t target_size,
                                          std::uint64_t seed,
                                          ThreadPool* pool) {
  const auto render = [&](const std::vector<tag::DerivationPtr>& population) {
    std::string out;
    for (const auto& derivation : population) {
      for (const auto& e : tag::ExpandToExpressions(grammar, *derivation)) {
        out += expr::ToSExpression(*e);
        out += '\n';
      }
      out += '\n';
    }
    return out;
  };
  const auto pooled =
      GenerateDerivations(grammar, alpha_index, count, target_size, seed, pool);
  const auto inline_run = GenerateDerivations(grammar, alpha_index, count,
                                              target_size, seed, nullptr);
  for (const auto& derivation : pooled) {
    std::string error;
    if (!tag::Validate(grammar, *derivation, &error)) {
      return OracleResult::Fail("generated derivation fails Validate: " +
                                error + " (seed " + std::to_string(seed) +
                                ")");
    }
  }
  const std::string a = render(pooled);
  if (a != render(inline_run)) {
    return OracleResult::Fail(
        "derivation population differs between pooled and inline generation "
        "(seed " +
        std::to_string(seed) + ")");
  }
  // Expansion must be a pure function of the derivation.
  if (a != render(pooled)) {
    return OracleResult::Fail("re-expanding the same derivations changed the "
                              "phenotype (seed " +
                              std::to_string(seed) + ")");
  }
  return OracleResult::Pass();
}

OracleResult CheckGenerationRoundTrip(const tag::Grammar& grammar,
                                      int alpha_index, std::size_t count,
                                      std::size_t target_size,
                                      std::uint64_t seed, ThreadPool* pool) {
  const auto render = [&](const tag::DerivationNode& derivation) {
    std::string out;
    for (const auto& e : tag::ExpandToExpressions(grammar, derivation)) {
      out += expr::ToSExpression(*e);
      out += '\n';
    }
    return out;
  };
  const auto population =
      GenerateDerivations(grammar, alpha_index, count, target_size, seed, pool);
  Rng rng(CaseSeed(seed, 0xc4b7ULL));
  for (std::size_t i = 0; i < population.size(); ++i) {
    const tag::DerivationNode& original = *population[i];
    const std::string once = ckpt::SerializeDerivation(original);
    std::string error;
    const tag::DerivationPtr parsed = ckpt::ParseDerivationLine(once, &error);
    if (parsed == nullptr) {
      return OracleResult::Fail("derivation " + std::to_string(i) +
                                " does not reparse: " + error + " (seed " +
                                std::to_string(seed) + ")");
    }
    if (!tag::Validate(grammar, *parsed, &error)) {
      return OracleResult::Fail("reparsed derivation " + std::to_string(i) +
                                " fails Validate: " + error + " (seed " +
                                std::to_string(seed) + ")");
    }
    if (ckpt::SerializeDerivation(*parsed) != once) {
      return OracleResult::Fail("derivation " + std::to_string(i) +
                                " is not a codec fixpoint (seed " +
                                std::to_string(seed) + ")");
    }
    if (render(*parsed) != render(original)) {
      return OracleResult::Fail("reparsed derivation " + std::to_string(i) +
                                " expands to a different phenotype (seed " +
                                std::to_string(seed) + ")");
    }
    // The individual's constant vector must survive with its exact bits.
    std::vector<double> parameters(4);
    for (double& p : parameters) p = rng.Uniform(-1e3, 1e3);
    std::vector<double> back;
    if (!ckpt::ParseDoubles(ckpt::SerializeDoubles(parameters), &back) ||
        back != parameters) {
      return OracleResult::Fail("parameter vector of individual " +
                                std::to_string(i) +
                                " does not round-trip (seed " +
                                std::to_string(seed) + ")");
    }
  }
  return OracleResult::Pass();
}

}  // namespace gmr::check
