// gmr_fuzz: property-based differential fuzzing of the expression
// pipeline (interpreter / VM / JIT / simplifier), the printer/parser, the
// static analysis layer, and TAG derivation generation.
//
//   gmr_fuzz [options]
//
//   --seed N              run seed (default 1)
//   --iters N             generated cases (default: $GMR_FUZZ_ITERS, else 2000)
//   --filter NAME         run only properties whose name contains NAME
//   --corpus-dir DIR      write shrunk counterexamples into DIR as .gmr files
//   --replay DIR          replay reproducers in DIR instead of fuzzing
//   --jit-every N         run the JIT oracle every Nth case (default 256)
//   --derivation-every N  run the derivation oracle every Nth case (default 64)
//   --contexts N          evaluation contexts sampled per case (default 8)
//   --threads N           worker threads (default 1; GMR_BENCH_THREADS honored)
//
// Exit codes: 0 all properties green, 1 failures, 2 usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/corpus.h"
#include "check/fuzz.h"
#include "common/thread_pool.h"

namespace {

struct Options {
  gmr::check::FuzzOptions fuzz;
  std::string replay_dir;
  int threads = 1;
};

bool ParseUint64(const char* text, std::uint64_t* value) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *value = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseInt(const char* text, int* value) {
  std::uint64_t v = 0;
  if (!ParseUint64(text, &v) || v > 1u << 20) return false;
  *value = static_cast<int>(v);
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  // Env defaults first; flags override.
  if (const char* env = std::getenv("GMR_FUZZ_ITERS")) {
    ParseUint64(env, &options->fuzz.iterations);
  }
  if (const char* env = std::getenv("GMR_BENCH_THREADS")) {
    ParseInt(env, &options->threads);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--seed") == 0) {
      if (!ParseUint64(value, &options->fuzz.seed)) return false;
      ++i;
    } else if (std::strcmp(arg, "--iters") == 0) {
      if (!ParseUint64(value, &options->fuzz.iterations)) return false;
      ++i;
    } else if (std::strcmp(arg, "--filter") == 0) {
      if (value == nullptr) return false;
      options->fuzz.filter = value;
      ++i;
    } else if (std::strcmp(arg, "--corpus-dir") == 0) {
      if (value == nullptr) return false;
      options->fuzz.corpus_dir = value;
      ++i;
    } else if (std::strcmp(arg, "--replay") == 0) {
      if (value == nullptr) return false;
      options->replay_dir = value;
      ++i;
    } else if (std::strcmp(arg, "--jit-every") == 0) {
      if (!ParseInt(value, &options->fuzz.jit_every)) return false;
      ++i;
    } else if (std::strcmp(arg, "--derivation-every") == 0) {
      if (!ParseInt(value, &options->fuzz.derivation_every)) return false;
      ++i;
    } else if (std::strcmp(arg, "--contexts") == 0) {
      if (!ParseInt(value, &options->fuzz.contexts_per_case)) return false;
      ++i;
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!ParseInt(value, &options->threads)) return false;
      ++i;
    } else {
      std::fprintf(stderr, "gmr_fuzz: unknown option %s\n", arg);
      return false;
    }
  }
  return true;
}

int Replay(const Options& options) {
  const gmr::check::GenConfig config = gmr::check::RiverGenConfig();
  gmr::check::OracleContext ctx;
  ctx.config = &config;
  ctx.contexts_per_case = options.fuzz.contexts_per_case;
  std::unique_ptr<gmr::ThreadPool> pool;
  if (options.threads > 1) {
    pool = std::make_unique<gmr::ThreadPool>(options.threads);
  }
  const gmr::check::ReplayResult result =
      gmr::check::ReplayCorpus(options.replay_dir, ctx, pool.get());
  for (const std::string& message : result.messages) {
    std::fprintf(stderr, "gmr_fuzz: %s\n", message.c_str());
  }
  std::printf("replayed %d reproducer(s) from %s: %d failing, %d unreadable\n",
              result.files, options.replay_dir.c_str(), result.failures,
              result.errors);
  return result.ok() ? 0 : 1;
}

int Fuzz(Options options) {
  std::unique_ptr<gmr::ThreadPool> pool;
  if (options.threads > 1) {
    pool = std::make_unique<gmr::ThreadPool>(options.threads);
    options.fuzz.pool = pool.get();
  }
  const gmr::check::FuzzReport report = gmr::check::RunFuzz(options.fuzz);
  std::printf("%-12s %10s %10s\n", "property", "cases", "failures");
  for (const auto& row : report.properties) {
    std::printf("%-12s %10llu %10llu\n", row.name.c_str(),
                static_cast<unsigned long long>(row.cases),
                static_cast<unsigned long long>(row.failures));
    if (!row.first_failure.empty()) {
      std::fprintf(stderr, "gmr_fuzz: %s: %s\n", row.name.c_str(),
                   row.first_failure.c_str());
    }
    for (const std::string& path : row.written) {
      std::fprintf(stderr, "gmr_fuzz: wrote %s\n", path.c_str());
    }
  }
  std::printf("seed %llu: %llu case-checks, %llu failure(s)\n",
              static_cast<unsigned long long>(options.fuzz.seed),
              static_cast<unsigned long long>(report.total_cases),
              static_cast<unsigned long long>(report.total_failures));
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: gmr_fuzz [--seed N] [--iters N] [--filter NAME] "
                 "[--corpus-dir DIR] [--replay DIR] [--jit-every N] "
                 "[--derivation-every N] [--contexts N] [--threads N]\n");
    return 2;
  }
  return options.replay_dir.empty() ? Fuzz(options) : Replay(options);
}
