#ifndef GMR_CHECK_FUZZ_H_
#define GMR_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/corpus.h"
#include "check/gen.h"
#include "check/oracles.h"

namespace gmr::check {

/// One fuzz run: `iterations` generated cases, each checked against every
/// enabled property; failures are greedily shrunk and (when `corpus_dir`
/// is set) persisted as replayable reproducers.
struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 2000;

  /// Substring filter on property names ("vm", "roundtrip", ...); empty
  /// runs everything.
  std::string filter;

  /// When non-empty, shrunk counterexamples are written here as .gmr files.
  std::string corpus_dir;

  int contexts_per_case = 8;

  /// The compiler-invoking oracles (jit, batch_jit) fork the system C
  /// compiler (~100 ms per case), so they run on every jit_every-th case
  /// only; the cheap oracles run on all.
  int jit_every = 256;

  /// The derivation-determinism oracle generates whole populations, so it
  /// runs on every derivation_every-th case.
  int derivation_every = 64;

  int max_shrink_attempts = 200;

  /// Fans the per-case work out; the derivation oracle also uses it for
  /// its pooled-vs-inline comparison. Null runs everything inline.
  ThreadPool* pool = nullptr;
};

/// Per-property tally of one run.
struct PropertyReport {
  std::string name;
  std::uint64_t cases = 0;
  std::uint64_t failures = 0;
  /// Detail of the lowest-index failure, after shrinking.
  std::string first_failure;
  /// Reproducer files written to the corpus.
  std::vector<std::string> written;
};

struct FuzzReport {
  std::vector<PropertyReport> properties;
  std::uint64_t total_cases = 0;
  std::uint64_t total_failures = 0;
  bool ok() const { return total_failures == 0; }
};

/// Runs the fuzz loop over the river GenConfig. Deterministic for a given
/// (options.seed, iterations, filter) regardless of thread count.
FuzzReport RunFuzz(const FuzzOptions& options);

/// Same, over an explicit generator configuration.
FuzzReport RunFuzz(const FuzzOptions& options, const GenConfig& config);

}  // namespace gmr::check

#endif  // GMR_CHECK_FUZZ_H_
