// Quickstart: generate a small synthetic river dataset, evaluate the expert
// MANUAL process, run a short genetic model revision, and compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/gmr.h"
#include "core/river_grammar.h"
#include "expr/print.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/synthetic.h"

int main() {
  using namespace gmr;

  // 1) Data: a 4-year synthetic Nakdong-like dataset (3 train + 1 test).
  river::SyntheticConfig data_config;
  data_config.years = 4;
  data_config.train_years = 3;
  data_config.seed = 7;
  const river::RiverDataset dataset = river::GenerateNakdongLike(data_config);
  std::printf("dataset: %zu days (%zu train, %zu test)\n", dataset.num_days,
              dataset.train_end, dataset.NumTestDays());

  // 2) Prior knowledge: seed process Eqs. (5)-(6), Table II revisions,
  //    Table III parameter priors.
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  std::printf("grammar: %zu alpha tree(s), %zu beta trees\n",
              knowledge.grammar.num_alpha_trees(),
              knowledge.grammar.num_beta_trees());

  // 3) Baseline: the MANUAL process with expert parameter means.
  const core::AccuracyReport manual = core::EvaluateAccuracy(
      river::ManualProcess(), gp::PriorMeans(knowledge.priors), dataset,
      river::SimulationConfig{});
  std::printf("MANUAL  train RMSE %.3f MAE %.3f | test RMSE %.3f MAE %.3f\n",
              manual.train_rmse, manual.train_mae, manual.test_rmse,
              manual.test_mae);

  // 4) A short GMR run (tiny budget for the quickstart; see the benches for
  //    paper-scale configurations).
  core::GmrConfig config;
  config.tag3p.population_size = 24;
  config.tag3p.max_generations = 8;
  config.tag3p.local_search_steps = 2;
  config.tag3p.sigma_rampdown_generations = 3;
  config.tag3p.seed = 11;
  config.tag3p.speedups.es_threshold = 1.0;

  const core::GmrRunResult result = core::RunGmr(dataset, knowledge, config);
  std::printf("GMR     train RMSE %.3f MAE %.3f | test RMSE %.3f MAE %.3f\n",
              result.train_rmse, result.train_mae, result.test_rmse,
              result.test_mae);
  std::printf("evaluations: %zu (cache hit rate %.0f%%, %zu short-circuited)\n",
              result.search.eval_stats.individuals_evaluated,
              100.0 * result.search.eval_stats.CacheHitRate(),
              result.search.eval_stats.short_circuited);
  std::printf("revised process:\n%s",
              core::DescribeModel(result.best_equations).c_str());
  return 0;
}
