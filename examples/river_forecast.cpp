// Full river water-quality case study (paper Sections II & IV): generate a
// multi-year synthetic Nakdong-like dataset, run genetic model revision at a
// configurable budget, report train/test forecasting accuracy against the
// expert MANUAL process, print the revised equations, and export the dataset
// plus the forecast series as CSV for external plotting.
//
// Usage: river_forecast [--ckpt DIR [--resume]]
//                        [years] [population] [generations] [runs] [seed]
//   defaults:            4       200          100            3      7
//
// With --ckpt DIR each GMR run snapshots its full search state into
// DIR/run<k> after every generation; add --resume to continue a killed
// invocation from the latest durable snapshot instead of starting over
// (the continuation is bit-identical to the uninterrupted run).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/csv.h"
#include "core/gmr.h"
#include "core/model_io.h"
#include "core/revision_report.h"
#include "core/river_grammar.h"
#include "expr/print.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"

int main(int argc, char** argv) {
  using namespace gmr;
  std::string ckpt_dir;
  bool resume = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    const std::string flag = argv[arg];
    if (flag == "--ckpt" && arg + 1 < argc) {
      ckpt_dir = argv[++arg];
    } else if (flag == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
    ++arg;
  }
  const int years = argc > arg ? std::atoi(argv[arg]) : 4;
  const int population = argc > arg + 1 ? std::atoi(argv[arg + 1]) : 200;
  const int generations = argc > arg + 2 ? std::atoi(argv[arg + 2]) : 100;
  const int runs = argc > arg + 3 ? std::atoi(argv[arg + 3]) : 3;
  const std::uint64_t seed =
      argc > arg + 4 ? static_cast<std::uint64_t>(std::atoll(argv[arg + 4]))
                     : 7;
  if (resume && ckpt_dir.empty()) {
    std::fprintf(stderr, "--resume requires --ckpt DIR\n");
    return 2;
  }

  // --- Data ---------------------------------------------------------------
  river::SyntheticConfig data_config;
  data_config.years = years;
  data_config.train_years = std::max(1, years * 3 / 4);
  data_config.seed = seed;
  const river::RiverDataset dataset = river::GenerateNakdongLike(data_config);
  std::printf(
      "dataset: %d years (%zu train days / %zu test days), 9 stations "
      "routed through the Nakdong network\n",
      years, dataset.train_end, dataset.NumTestDays());

  // --- Expert baseline ----------------------------------------------------
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const std::vector<double> prior_means = gp::PriorMeans(knowledge.priors);
  const core::AccuracyReport manual = core::EvaluateAccuracy(
      river::ManualProcess(), prior_means, dataset,
      river::SimulationConfig{});
  std::printf("\nMANUAL expert process:  train RMSE %8.3f | test RMSE %8.3f\n",
              manual.train_rmse, manual.test_rmse);

  // --- Genetic model revision ----------------------------------------------
  core::GmrRunResult best;
  best.test_rmse = 1e300;
  for (int run = 0; run < runs; ++run) {
    core::GmrConfig config;
    config.tag3p.population_size = population;
    config.tag3p.max_generations = generations;
    config.tag3p.sigma_rampdown_generations = generations / 5;
    config.tag3p.local_search_steps = 3;
    config.tag3p.seed = 100 + static_cast<std::uint64_t>(run);
    obs::RunContext context;
    std::unique_ptr<ckpt::Checkpointer> checkpointer;
    if (!ckpt_dir.empty()) {
      ckpt::CheckpointOptions options;
      options.dir = ckpt_dir + "/run" + std::to_string(run);
      if (!resume) {  // fresh start: discard any stale snapshot chain
        std::error_code ec;
        std::filesystem::remove_all(options.dir, ec);
      }
      checkpointer = std::make_unique<ckpt::Checkpointer>(options);
      context.checkpointer = checkpointer.get();
      if (resume && checkpointer->Load() != nullptr) {
        std::printf("GMR run %d: resuming from generation %llu\n", run,
                    static_cast<unsigned long long>(
                        checkpointer->Load()->step));
      }
    }
    const core::GmrProblem problem{&dataset, &knowledge};
    core::GmrRunResult result = core::RunGmr(config, problem, context);
    std::printf(
        "GMR run %d:              train RMSE %8.3f | test RMSE %8.3f "
        "(%zu simulated evals, cache hit %.0f%%)\n",
        run, result.train_rmse, result.test_rmse,
        result.search.eval_stats.individuals_evaluated,
        100.0 * result.search.eval_stats.CacheHitRate());
    if (result.test_rmse < best.test_rmse) best = std::move(result);
  }

  std::printf(
      "\nbest revised process:   train RMSE %8.3f | test RMSE %8.3f "
      "(%.0f%% better than MANUAL on test)\n",
      best.train_rmse, best.test_rmse,
      100.0 * (1.0 - best.test_rmse / manual.test_rmse));
  std::printf("\nrevised equations:\n%s",
              core::DescribeModel(best.best_equations).c_str());
  std::printf("\napplied revisions (derivation tree):\n%s",
              core::SummarizeRevisions(knowledge.grammar, *best.best.genotype)
                  .ToString()
                  .c_str());

  std::printf("\ncalibrated constants:\n");
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    std::printf("  %-8s %12.6g   (prior mean %g)\n",
                river::ParameterName(slot),
                best.best.parameters[static_cast<std::size_t>(slot)],
                knowledge.priors[static_cast<std::size_t>(slot)].mean);
  }

  // --- Export -------------------------------------------------------------
  const std::vector<double> forecast = river::SimulateBPhy(
      best.best_equations, best.best.parameters, dataset, 0,
      dataset.num_days, dataset.initial_bphy, dataset.initial_bzoo,
      river::SimulationConfig{}, /*compiled=*/true);
  CsvTable table = dataset.ToCsv();
  table.column_names.push_back("chla_forecast");
  for (std::size_t t = 0; t < table.rows.size(); ++t) {
    table.rows[t].push_back(forecast[t]);
  }
  const std::string out = "river_forecast.csv";
  if (WriteCsv(out, table)) {
    std::printf("\nwrote %s (drivers + observations + free-run forecast)\n",
                out.c_str());
  }

  // Persist the revised model for later reuse (core/model_io.h).
  core::SavedModel saved;
  saved.equations = best.best_equations;
  saved.parameters = best.best.parameters;
  std::vector<std::string> parameter_names;
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    parameter_names.push_back(river::ParameterName(slot));
  }
  if (core::SaveModel("river_model.txt", saved, parameter_names)) {
    std::printf("wrote river_model.txt (revised equations + constants)\n");
  }
  return 0;
}
