// GMR on a second domain ("Application to Other Problems", Section III-C):
// revising a Lotka-Volterra predator-prey model.
//
// The expert seed is the classic textbook system
//     dx/dt = x * (C_a - C_b * y)          (prey)
//     dy/dt = y * (C_c * x - C_d)          (predator)
// while the data-generating truth additionally contains
//   - logistic prey self-limitation  (- C_a * x^2 / K), and
//   - temperature-dependent predator mortality (C_d scaled by temperature).
// Prior knowledge marks both equations as extensible with {x, y, T, R}
// operands, exactly like the river grammar's connector/extender scheme —
// this example shows the whole pipeline (grammar, priors, fitness, engine)
// through the domain-agnostic public API, with no river code involved.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "expr/ast.h"
#include "expr/compile.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "gp/tag3p.h"
#include "tag/generate.h"

namespace {

using namespace gmr;
namespace e = gmr::expr;
namespace t = gmr::tag;

// Variable slots: state x, y plus the observed temperature driver.
enum Slot { kX = 0, kY = 1, kTemp = 2, kNumSlots = 3 };

// Parameter slots.
enum Param { kA = 0, kB = 1, kC = 2, kD = 3, kNumParams = 4 };

e::ExprPtr Var(int slot) {
  static const char* names[] = {"x", "y", "T"};
  return e::Variable(slot, names[slot]);
}
e::ExprPtr Par(int slot) {
  static const char* names[] = {"C_a", "C_b", "C_c", "C_d"};
  return e::Parameter(slot, names[slot]);
}

// ---------------------------------------------------------------------------
// Synthetic data: integrate the "true" extended system under a seasonal
// temperature driver and observe the prey with noise.
struct Series {
  std::vector<double> temperature;
  std::vector<double> observed_prey;
  double x0 = 2.0;
  double y0 = 1.0;
  std::size_t train_end = 0;
};

Series GenerateData(std::size_t days, std::size_t train_days,
                    std::uint64_t seed) {
  Rng rng(seed);
  Series series;
  series.train_end = train_days;
  series.temperature.resize(days);
  series.observed_prey.resize(days);
  double x = series.x0;
  double y = series.y0;
  constexpr double kCarryingCapacity = 8.0;
  for (std::size_t day = 0; day < days; ++day) {
    const double temp =
        15.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(day) / 365.0) +
        rng.Gaussian(0.0, 0.4);
    series.temperature[day] = temp;
    const int substeps = 8;
    for (int s = 0; s < substeps; ++s) {
      const double dt = 1.0 / substeps;
      // Truth: logistic prey + temperature-scaled predator death.
      const double dx = x * (0.6 * (1.0 - x / kCarryingCapacity) - 0.3 * y);
      const double death = 0.4 * (0.02 * temp + 0.6);
      const double dy = y * (0.25 * x - death);
      x = std::max(x + dt * dx, 1e-3);
      y = std::max(y + dt * dy, 1e-3);
    }
    series.observed_prey[day] = x * (1.0 + rng.Gaussian(0.0, 0.02));
  }
  return series;
}

// ---------------------------------------------------------------------------
// Prior knowledge: the textbook seed with one extension point per equation.
t::Grammar BuildGrammar() {
  t::Grammar grammar;
  const t::Symbol exp = t::kExpSymbol;

  // dx/dt = { x * (C_a - C_b * y) } Ext1
  e::ExprPtr prey = e::Mul(Var(kX), e::Sub(Par(kA), e::Mul(Par(kB), Var(kY))));
  // dy/dt = { y * (C_c * x - C_d) } Ext2
  e::ExprPtr predator =
      e::Mul(Var(kY), e::Sub(e::Mul(Par(kC), Var(kX)), Par(kD)));

  std::vector<t::TagNodePtr> equations;
  equations.push_back(t::WrapperNode("ExtC1", t::FromExpr(prey, exp)));
  equations.push_back(t::WrapperNode("ExtC2", t::FromExpr(predator, exp)));
  grammar.AddAlphaTree(
      t::ElementaryTree("lotka-volterra", t::SystemNode(std::move(equations))));

  // Revisions: per extension point, connectors (+ a scaled operand) and
  // extenders {+,-,*,/} over {x, y, T, R}.
  for (int ext = 1; ext <= 2; ++ext) {
    const t::Symbol extc = "ExtC" + std::to_string(ext);
    const t::Symbol exte = "ExtE" + std::to_string(ext);
    auto operand = [&](int slot) -> t::TagNodePtr {
      if (slot < 0) return t::SlotNode("R");
      std::vector<t::TagNodePtr> kids;
      kids.push_back(t::WrapperNode(exte, t::LeafNode(Var(slot))));
      kids.push_back(t::SlotNode("R"));
      return t::OperatorNode(exte, e::NodeKind::kMul, std::move(kids));
    };
    for (int slot : {(int)kX, (int)kY, (int)kTemp, -1}) {
      std::vector<t::TagNodePtr> kids;
      kids.push_back(t::FootNode(extc));
      kids.push_back(t::WrapperNode(exte, operand(slot)));
      grammar.AddBetaTree(t::ElementaryTree(
          "conn" + std::to_string(ext),
          t::OperatorNode(extc, e::NodeKind::kAdd, std::move(kids))));
    }
    for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kSub,
                           e::NodeKind::kMul, e::NodeKind::kDiv}) {
      for (int slot : {(int)kX, (int)kY, (int)kTemp, -1}) {
        std::vector<t::TagNodePtr> kids;
        kids.push_back(t::FootNode(exte));
        kids.push_back(t::WrapperNode(
            exte, slot < 0 ? t::SlotNode("R") : t::LeafNode(Var(slot))));
        grammar.AddBetaTree(t::ElementaryTree(
            "ext" + std::to_string(ext),
            t::OperatorNode(exte, op, std::move(kids))));
      }
    }
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

// ---------------------------------------------------------------------------
// Fitness: free-run the candidate system; running RMSE against observed prey.
class PreyFitness : public gp::SequentialFitness {
 public:
  PreyFitness(const Series* series, std::size_t begin, std::size_t end)
      : series_(series), begin_(begin), end_(end) {}

  std::size_t num_cases() const override { return end_ - begin_; }
  std::size_t num_parameters() const override { return kNumParams; }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public gp::SequentialEvaluation {
     public:
      Eval(const std::vector<e::ExprPtr>& eqs, std::vector<double> params,
           bool compiled, const Series* series, std::size_t begin,
           std::size_t end)
          : params_(std::move(params)),
            series_(series),
            t_(begin),
            end_(end),
            x_(series->x0),
            y_(series->y0),
            compiled_(compiled) {
        if (compiled) {
          for (const auto& eq : eqs) programs_.push_back(e::Compile(*eq));
        } else {
          equations_ = eqs;
        }
      }
      bool Step() override {
        double vars[kNumSlots];
        vars[kTemp] = series_->temperature[t_];
        const int substeps = 4;
        for (int s = 0; s < substeps; ++s) {
          vars[kX] = x_;
          vars[kY] = y_;
          e::EvalContext ctx{vars, kNumSlots, params_.data(),
                             params_.size()};
          const double dx =
              compiled_ ? programs_[0].Run(ctx)
                        : e::EvalExpr(*equations_[0], ctx);
          const double dy =
              compiled_ ? programs_[1].Run(ctx)
                        : e::EvalExpr(*equations_[1], ctx);
          const double dt = 1.0 / substeps;
          x_ = std::min(std::max(x_ + dt * dx, 1e-3), 1e3);
          y_ = std::min(std::max(y_ + dt * dy, 1e-3), 1e3);
        }
        const double err = x_ - series_->observed_prey[t_];
        sse_ += err * err;
        ++steps_;
        ++t_;
        return t_ < end_;
      }
      double CurrentFitness() const override {
        return steps_ == 0 ? 0.0
                           : std::sqrt(sse_ / static_cast<double>(steps_));
      }
      std::size_t steps_taken() const override { return steps_; }

     private:
      std::vector<e::ExprPtr> equations_;
      std::vector<e::CompiledProgram> programs_;
      std::vector<double> params_;
      const Series* series_;
      std::size_t t_;
      std::size_t end_;
      double x_;
      double y_;
      bool compiled_;
      double sse_ = 0.0;
      std::size_t steps_ = 0;
    };
    return std::make_unique<Eval>(equations, parameters,
                                  use_compiled_backend, series_, begin_,
                                  end_);
  }

 private:
  const Series* series_;
  std::size_t begin_;
  std::size_t end_;
};

}  // namespace

int main() {
  const Series series = GenerateData(/*days=*/730, /*train_days=*/548, 11);
  const t::Grammar grammar = BuildGrammar();
  std::printf("grammar: %zu alpha, %zu beta trees\n",
              grammar.num_alpha_trees(), grammar.num_beta_trees());

  // Priors on the textbook rate constants (deliberately off the truth).
  gp::ParameterPriors priors{
      {"C_a", 0.5, 0.1, 1.5},
      {"C_b", 0.25, 0.05, 1.0},
      {"C_c", 0.2, 0.05, 1.0},
      {"C_d", 0.5, 0.1, 1.5},
  };

  const PreyFitness train_fitness(&series, 0, series.train_end);
  const PreyFitness test_fitness(&series, 0, series.observed_prey.size());

  // Seed-model baseline.
  {
    tag::DerivationNode seed;
    const auto equations = tag::ExpandToExpressions(grammar, seed);
    auto eval = train_fitness.Begin(equations, gp::PriorMeans(priors), true);
    while (eval->Step()) {
    }
    std::printf("textbook Lotka-Volterra train RMSE: %.4f\n",
                eval->CurrentFitness());
  }

  gp::Tag3pConfig config;
  config.population_size = 100;
  config.max_generations = 40;
  config.local_search_steps = 3;
  config.sigma_rampdown_generations = 8;
  config.seed = 5;
  config.speedups.tree_caching = true;
  config.speedups.short_circuiting = true;
  config.speedups.runtime_compilation = true;
  gp::Tag3pEngine engine(&grammar, &train_fitness, priors, config);
  const gp::Tag3pResult result = engine.Run();

  auto equations = tag::ExpandToExpressions(grammar, *result.best.genotype);
  for (auto& eq : equations) eq = e::Simplify(eq);
  std::printf("revised system (train RMSE %.4f):\n", result.best.fitness);
  std::printf("  dx/dt = %s\n", e::ToString(*equations[0]).c_str());
  std::printf("  dy/dt = %s\n", e::ToString(*equations[1]).c_str());
  std::printf("parameters:");
  for (std::size_t i = 0; i < priors.size(); ++i) {
    std::printf(" %s=%.3f", priors[i].name.c_str(),
                result.best.parameters[i]);
  }
  std::printf("\n");
  return 0;
}
