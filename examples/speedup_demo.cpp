// Walk-through of the three speedup techniques (paper Section III-D):
//   TC — tree caching with algebraic simplification,
//   ES — evaluation short-circuiting (Algorithm 1),
//   RC — runtime compilation (bytecode backend).
// Each is demonstrated in isolation with its observable effect printed.

#include <cstdio>

#include "common/timer.h"
#include "core/river_grammar.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "gp/evaluator.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "tag/generate.h"

int main() {
  using namespace gmr;
  river::SyntheticConfig data_config;
  data_config.years = 2;
  data_config.train_years = 1;
  data_config.seed = 5;
  const river::RiverDataset dataset = river::GenerateNakdongLike(data_config);
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  Rng rng(3);
  gp::Individual individual;
  individual.genotype =
      tag::GrowRandom(knowledge.grammar, knowledge.seed_alpha_index, 10, rng);
  individual.parameters = gp::PriorMeans(knowledge.priors);

  // --- RC: runtime compilation --------------------------------------------
  {
    std::printf("== RC: runtime compilation ==\n");
    for (bool compiled : {false, true}) {
      gp::SpeedupConfig config;
      config.runtime_compilation = compiled;
      gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
      Timer timer;
      double fitness_value = 0.0;
      for (int i = 0; i < 20; ++i) {
        fitness_value = evaluator.EvaluateFull(individual);
      }
      std::printf("  %-12s fitness %.4f, 20 full evaluations in %.3fs\n",
                  compiled ? "compiled:" : "interpreted:", fitness_value,
                  timer.ElapsedSeconds());
    }
  }

  // --- TC: tree caching ------------------------------------------------
  {
    std::printf("\n== TC: tree caching (with simplification) ==\n");
    gp::SpeedupConfig config;
    config.tree_caching = true;
    config.runtime_compilation = true;
    gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
    for (int i = 0; i < 5; ++i) {
      gp::Individual copy = individual.Clone();
      evaluator.Evaluate(&copy);
    }
    std::printf(
        "  evaluated 5 identical individuals: %zu simulations, %zu cache "
        "hits\n",
        evaluator.stats().individuals_evaluated,
        evaluator.stats().cache_hits);
    std::printf(
        "  simplification canonicalizes semantically equal revisions:\n");
    const expr::ExprPtr redundant =
        expr::Add(expr::Mul(expr::Variable(0, "x"), expr::Constant(1.0)),
                  expr::Constant(0.0));
    std::printf("    %s  ->  %s\n", expr::ToString(*redundant).c_str(),
                expr::ToString(*expr::Simplify(redundant)).c_str());
  }

  // --- ES: evaluation short-circuiting ----------------------------------
  {
    std::printf("\n== ES: evaluation short-circuiting (Algorithm 1) ==\n");
    gp::SpeedupConfig config;
    config.short_circuiting = true;
    config.runtime_compilation = true;
    gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
    gp::Individual good = individual.Clone();
    evaluator.Evaluate(&good);  // First evaluation is always full.
    std::printf("  incumbent fitness %.3f after %zu time steps (full)\n",
                good.fitness, evaluator.stats().time_steps_evaluated);

    gp::Individual bad = individual.Clone();
    // Sabotage a lexeme so the candidate diverges immediately.
    if (!bad.genotype->children.empty()) {
      auto& lexemes = bad.genotype->children[0].node->lexemes;
      lexemes.assign(lexemes.size(), 500.0);
    }
    const std::size_t before = evaluator.stats().time_steps_evaluated;
    evaluator.Evaluate(&bad);
    std::printf(
        "  divergent candidate cut after %zu of %zu time steps "
        "(estimated fitness %.1f)\n",
        evaluator.stats().time_steps_evaluated - before,
        fitness.num_cases(), bad.fitness);
  }
  return 0;
}
