// Observability subsystem tests (ctest label `obs`): trace event
// serialization, the JSONL sink + reader round trip, metric registries, the
// run manifest, RunContext pool leasing, the EvalStats::Merge algebra, and
// the determinism contract — byte-identical traces across thread counts
// under kFrozenFrontier, and sink-on == sink-off search trajectories.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "gp/evaluator.h"
#include "gp/tag3p.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "obs/run_context.h"
#include "obs/telemetry.h"
#include "obs/trace_reader.h"
#include "tag/generate.h"

namespace gmr::obs {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;

// ------------------------------------------------------- serialization ----

TEST(FormatJsonNumberTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(FormatJsonNumber(3.0), "3");
  EXPECT_EQ(FormatJsonNumber(-5.0), "-5");
  EXPECT_EQ(FormatJsonNumber(0.0), "0");
}

TEST(FormatJsonNumberTest, NonIntegersRoundTrip) {
  EXPECT_EQ(FormatJsonNumber(0.5), "0.5");
  const double value = 0.1;
  EXPECT_EQ(std::stod(FormatJsonNumber(value)), value);
}

TEST(FormatJsonNumberTest, NonFiniteValuesStayValidJson) {
  EXPECT_EQ(FormatJsonNumber(std::nan("")), "null");
  EXPECT_EQ(FormatJsonNumber(std::numeric_limits<double>::infinity()),
            "1e999");
  EXPECT_EQ(FormatJsonNumber(-std::numeric_limits<double>::infinity()),
            "-1e999");
}

TEST(SerializeEventTest, FixedFieldOrder) {
  TraceEvent event("generation");
  event.Field("gen", 3)
      .Label("mode", "frozen")
      .Timing("seconds", 0.5)
      .Env("num_threads", 4)
      .EnvLabel("hostname", "box");
  const std::string line = SerializeEvent(event, 7, JsonlTraceOptions{});
  EXPECT_EQ(line,
            "{\"type\":\"generation\",\"seq\":7,\"gen\":3,"
            "\"mode\":\"frozen\",\"seconds\":0.5,\"num_threads\":4,"
            "\"hostname\":\"box\"}");
}

TEST(SerializeEventTest, DeterministicPresetSuppressesTimingsAndEnv) {
  TraceEvent event("generation");
  event.Field("gen", 3)
      .Label("mode", "frozen")
      .Timing("seconds", 0.5)
      .Env("num_threads", 4)
      .EnvLabel("hostname", "box");
  const std::string line =
      SerializeEvent(event, 7, JsonlTraceOptions::Deterministic());
  EXPECT_EQ(line,
            "{\"type\":\"generation\",\"seq\":7,\"gen\":3,"
            "\"mode\":\"frozen\"}");
}

TEST(SerializeEventTest, EscapesStrings) {
  TraceEvent event("x");
  event.Label("msg", "a\"b\\c\nd");
  const std::string line = SerializeEvent(event, 0, JsonlTraceOptions{});
  EXPECT_NE(line.find("\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(ParseTraceLineTest, RoundTripsSerializedEvents) {
  TraceEvent event("eval_batch");
  event.Field("n", 24).Field("best_f", 1.25).Label("method", "GA \"x\"");
  const std::string line = SerializeEvent(event, 42, JsonlTraceOptions{});

  TraceRecord record;
  ASSERT_TRUE(ParseTraceLine(line, &record));
  EXPECT_EQ(record.type, "eval_batch");
  EXPECT_EQ(record.seq, 42u);
  EXPECT_EQ(record.FindNumber("n"), 24.0);
  EXPECT_EQ(record.FindNumber("best_f"), 1.25);
  EXPECT_EQ(record.FindString("method"), "GA \"x\"");
  EXPECT_TRUE(record.HasNumber("n"));
  EXPECT_FALSE(record.HasNumber("absent"));
  EXPECT_EQ(record.FindNumber("absent", -1.0), -1.0);
}

TEST(ParseTraceLineTest, RejectsMalformedInput) {
  TraceRecord record;
  EXPECT_FALSE(ParseTraceLine("not json", &record));
  EXPECT_FALSE(ParseTraceLine("{\"seq\":1}", &record));  // no type
}

// --------------------------------------------------------------- sinks ----

TEST(NullSinkTest, DisabledAndShared) {
  EXPECT_FALSE(NullTelemetrySink()->enabled());
  EXPECT_EQ(ResolveSink(nullptr), NullTelemetrySink());
  NullSink sink;
  EXPECT_EQ(ResolveSink(&sink), &sink);
}

TEST(VectorSinkTest, CollectsEventsInOrder) {
  VectorSink sink;
  EXPECT_TRUE(sink.enabled());
  sink.Emit(TraceEvent("a"));
  sink.Emit(TraceEvent("b"));
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].type, "a");
  EXPECT_EQ(sink.events()[1].type, "b");
}

TEST(JsonlTraceSinkTest, WritesReadableTrace) {
  const std::string path = testing::TempDir() + "/obs_roundtrip.jsonl";
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    TraceEvent event("generation");
    event.Field("gen", 0).Field("best_fitness", 2.5);
    sink.Emit(std::move(event));
    TraceEvent last("run_result");
    last.Field("best_fitness", 2.5);
    sink.Emit(std::move(last));
    sink.Flush();
    EXPECT_EQ(sink.events_emitted(), 2u);
  }  // destructor drains and closes

  std::vector<TraceRecord> records;
  const Status status = ReadTrace(path, &records);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, "generation");
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[1].type, "run_result");
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[1].FindNumber("best_fitness"), 2.5);
}

TEST(ReadTraceTest, ReportsMissingFileAndBadLines) {
  std::vector<TraceRecord> records;
  EXPECT_FALSE(ReadTrace("/nonexistent/trace.jsonl", &records).ok());

  const std::string path = testing::TempDir() + "/obs_bad.jsonl";
  std::ofstream(path) << "{\"type\":\"ok\",\"seq\":0}\ngarbage\n";
  const Status status = ReadTrace(path, &records);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message.find(":2:"), std::string::npos)
      << status.message;
}

// ------------------------------------------------------------ registry ----

TEST(RegistryTest, CountersTimersHistograms) {
  MetricRegistry registry;
  Counter* counter = registry.counter("evals");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->value(), 5u);
  EXPECT_EQ(registry.counter("evals"), counter);  // stable on re-lookup

  TimerStat* timer = registry.timer("batch");
  timer->Record(1.0);
  timer->Record(3.0);
  EXPECT_EQ(timer->count(), 2u);
  EXPECT_DOUBLE_EQ(timer->total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(timer->max_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(timer->mean_seconds(), 2.0);

  Histogram* hist = registry.histogram("size", 1.0, 2.0, 8);
  for (double v : {0.5, 1.5, 3.0, 100.0, 1e9}) hist->Record(v);
  EXPECT_EQ(hist->total_count(), 5u);
  EXPECT_LE(hist->Quantile(0.5), hist->Quantile(0.99));
  EXPECT_TRUE(std::isinf(hist->Quantile(1.0)) || hist->Quantile(1.0) > 0);
}

TEST(RegistryTest, EmitsSnapshotInNameOrder) {
  MetricRegistry registry;
  registry.counter("zeta")->Increment(2);
  registry.counter("alpha")->Increment(1);
  registry.timer("batch")->Record(0.25);
  registry.histogram("size", 1.0, 2.0, 4)->Record(3.0);

  VectorSink sink;
  registry.EmitTo(&sink, "metrics");
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& event = sink.events()[0];
  EXPECT_EQ(event.type, "metrics");

  std::vector<std::string> keys;
  for (const auto& [key, value] : event.fields) keys.push_back(key);
  // std::map iteration: counters first, alphabetical.
  ASSERT_GE(keys.size(), 2u);
  EXPECT_EQ(keys[0], "counter.alpha");
  EXPECT_EQ(keys[1], "counter.zeta");
}

// ------------------------------------------------------------ manifest ----

TEST(ManifestTest, EmitsDriverSeedConfigAndEnvironment) {
  RunManifest manifest = MakeRunManifest("tag3p", 17);
  manifest.config_fields = {{"population_size", 24.0}};
  manifest.config_labels = {{"frontier_mode", "frozen"}};
  manifest.num_threads = 4;
  EXPECT_FALSE(manifest.git_describe.empty());
  EXPECT_FALSE(manifest.hostname.empty());
  EXPECT_FALSE(manifest.started_at_utc.empty());

  VectorSink sink;
  EmitManifest(&sink, manifest);
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& event = sink.events()[0];
  EXPECT_EQ(event.type, "manifest");
  ASSERT_FALSE(event.labels.empty());
  EXPECT_EQ(event.labels[0].first, "driver");
  EXPECT_EQ(event.labels[0].second, "tag3p");
  ASSERT_FALSE(event.fields.empty());
  EXPECT_EQ(event.fields[0].first, "seed");
  EXPECT_EQ(event.fields[0].second, 17.0);
  // Thread count and machine identity are environment-class: suppressed
  // under the deterministic preset, so they can never break byte identity.
  EXPECT_FALSE(event.env_fields.empty());
  EXPECT_FALSE(event.env_labels.empty());
}

TEST(ManifestTest, NullSinkEmissionIsANoOp) {
  EmitManifest(nullptr, MakeRunManifest("x", 1));  // must not crash
}

// ----------------------------------------------------------- RunContext ----

TEST(RunContextTest, MakeThreadPoolIsNullForSerial) {
  EXPECT_EQ(MakeThreadPool(0), nullptr);
  EXPECT_EQ(MakeThreadPool(1), nullptr);
  const auto pool = MakeThreadPool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3);
}

TEST(RunContextTest, LeaseBorrowsSharedPool) {
  const auto shared = MakeThreadPool(2);
  RunContext context;
  context.pool = shared.get();
  const PoolLease lease = LeasePool(context, /*num_threads=*/8);
  EXPECT_EQ(lease.pool(), shared.get());  // config thread count ignored
}

TEST(RunContextTest, LeaseOwnsPoolFromConfigWhenContextHasNone) {
  const PoolLease serial = LeasePool(RunContext{}, 1);
  EXPECT_EQ(serial.pool(), nullptr);
  const PoolLease parallel = LeasePool(RunContext{}, 3);
  ASSERT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(parallel.pool()->num_threads(), 3);
}

TEST(RunContextTest, TelemetryAccessorNeverNull) {
  RunContext context;
  EXPECT_FALSE(context.telemetry().enabled());
  VectorSink sink;
  context.sink = &sink;
  EXPECT_TRUE(context.telemetry().enabled());
}

// ------------------------------------------------- EvalStats::Merge law ----

gp::EvalStats RandomStats(Rng& rng) {
  gp::EvalStats stats;
  stats.individuals_evaluated = rng.UniformInt(100);
  stats.cache_hits = rng.UniformInt(100);
  stats.cache_lookups = rng.UniformInt(100);
  stats.full_evaluations = rng.UniformInt(100);
  stats.short_circuited = rng.UniformInt(100);
  stats.static_rejects = rng.UniformInt(100);
  stats.time_steps_evaluated = rng.UniformInt(10000);
  // Quarters are exactly representable, so double addition is associative
  // bit-for-bit on these values and the law can be checked with EXPECT_EQ.
  stats.wall_seconds = static_cast<double>(rng.UniformInt(64)) * 0.25;
  stats.cpu_seconds = static_cast<double>(rng.UniformInt(64)) * 0.25;
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    stats.outcomes[i] = rng.UniformInt(50);
  }
  return stats;
}

void ExpectStatsEqual(const gp::EvalStats& a, const gp::EvalStats& b) {
  EXPECT_EQ(a.individuals_evaluated, b.individuals_evaluated);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.full_evaluations, b.full_evaluations);
  EXPECT_EQ(a.short_circuited, b.short_circuited);
  EXPECT_EQ(a.static_rejects, b.static_rejects);
  EXPECT_EQ(a.time_steps_evaluated, b.time_steps_evaluated);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds);
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    EXPECT_EQ(a.outcomes[i], b.outcomes[i]) << "outcome " << i;
  }
}

TEST(EvalStatsMergeTest, AssociativeAndCommutativeOverEveryField) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const gp::EvalStats a = RandomStats(rng);
    const gp::EvalStats b = RandomStats(rng);
    const gp::EvalStats c = RandomStats(rng);

    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    gp::EvalStats left = a;
    left.Merge(b);
    left.Merge(c);
    gp::EvalStats bc = b;
    bc.Merge(c);
    gp::EvalStats right = a;
    right.Merge(bc);
    ExpectStatsEqual(left, right);

    // a ⊕ b == b ⊕ a
    gp::EvalStats ab = a;
    ab.Merge(b);
    gp::EvalStats ba = b;
    ba.Merge(a);
    ExpectStatsEqual(ab, ba);
  }
}

TEST(EvalStatsMergeTest, DefaultStatsAreTheIdentity) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const gp::EvalStats a = RandomStats(rng);

    gp::EvalStats left = a;
    left.Merge(gp::EvalStats{});
    ExpectStatsEqual(left, a);

    gp::EvalStats right;
    right.Merge(a);
    ExpectStatsEqual(right, a);
  }
}

TEST(EvalStatsMergeTest, OutcomeMixFoldsToMultisetCounts) {
  // A stream of per-evaluation outcome records (one outcome tallied per
  // stats instance, the way a worker lane records a single evaluation)
  // must fold into exactly the multiset counts of the stream.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t expected[kNumEvalOutcomes] = {};
    gp::EvalStats folded;
    const int events = 1 + static_cast<int>(rng.UniformInt(200));
    for (int e = 0; e < events; ++e) {
      const std::size_t outcome = rng.UniformInt(kNumEvalOutcomes);
      ++expected[outcome];
      gp::EvalStats one;
      one.individuals_evaluated = 1;
      one.outcomes[outcome] = 1;
      if (outcome ==
          static_cast<std::size_t>(EvalOutcome::kStaticReject)) {
        one.static_rejects = 1;
      }
      folded.Merge(one);
    }
    std::size_t total = 0;
    for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
      EXPECT_EQ(folded.outcomes[i], expected[i]) << "outcome " << i;
      total += folded.outcomes[i];
    }
    EXPECT_EQ(folded.individuals_evaluated, static_cast<std::size_t>(events));
    EXPECT_EQ(total, static_cast<std::size_t>(events));
    // The shortcut counter stays consistent with the outcome it mirrors.
    EXPECT_EQ(folded.static_rejects,
              folded.outcomes[static_cast<std::size_t>(
                  EvalOutcome::kStaticReject)]);
  }
}

TEST(EvalStatsMergeTest, FoldOrderOverRandomPartitionsIsInvariant) {
  // Per-thread partial stats fold in whatever order lanes hit the batch
  // barrier; any partition of the stream into per-lane partials must reach
  // the same totals as the sequential fold.
  Rng rng(63);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<gp::EvalStats> stream;
    const int n = 2 + static_cast<int>(rng.UniformInt(30));
    for (int i = 0; i < n; ++i) stream.push_back(RandomStats(rng));

    gp::EvalStats sequential;
    for (const auto& s : stream) sequential.Merge(s);

    const std::size_t lanes = 1 + rng.UniformInt(4);
    std::vector<gp::EvalStats> partial(lanes);
    for (const auto& s : stream) partial[rng.UniformInt(lanes)].Merge(s);
    // Fold the lanes back in a rotated (non-identity) order.
    const std::size_t start = rng.UniformInt(lanes);
    gp::EvalStats folded;
    for (std::size_t i = 0; i < lanes; ++i) {
      folded.Merge(partial[(start + i) % lanes]);
    }
    ExpectStatsEqual(folded, sequential);
  }
}

// --------------------------------------- search determinism under trace ----

// Same toy problem as gp_test/parallel_test: seed "x + 0", revisions
// "Exp* + R" and "Exp* * R", target concept 2x + 1.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

class ToyFitness : public gp::SequentialFitness {
 public:
  explicit ToyFitness(std::size_t n) : n_(n) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return 0; }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public gp::SequentialEvaluation {
     public:
      Eval(const e::ExprPtr& eq, std::vector<double> params, bool compiled,
           std::size_t n)
          : equation_(eq), params_(std::move(params)), n_(n) {
        if (compiled) program_ = e::Compile(*equation_);
        compiled_ = compiled;
      }
      bool Step() override {
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        ctx.parameters = params_.data();
        ctx.num_parameters = params_.size();
        const double pred = compiled_ ? program_.Run(ctx)
                                      : e::EvalExpr(*equation_, ctx);
        const double err = pred - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      std::vector<double> params_;
      e::CompiledProgram program_;
      bool compiled_ = false;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    return std::make_unique<Eval>(equations[0], parameters,
                                  use_compiled_backend, n_);
  }

 private:
  std::size_t n_;
};

gp::Tag3pConfig ToyConfig(int num_threads) {
  gp::Tag3pConfig config;
  config.population_size = 24;
  config.max_generations = 6;
  config.bounds = gp::SizeBounds{2, 12};
  config.local_search_steps = 2;
  config.elite_polish_steps = 5;
  config.sigma_rampdown_generations = 3;
  config.seed = 5;
  // The determinism contract (DESIGN.md §4f): ES under kFrozenFrontier is
  // bit-identical across thread counts, but TC's cache counters are
  // satisfied-first racy, so byte-identical traces require tree_caching
  // off.
  config.speedups.tree_caching = false;
  config.speedups.short_circuiting = true;
  config.speedups.frontier_mode = gp::FrontierMode::kFrozenFrontier;
  config.speedups.num_threads = num_threads;
  return config;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceDeterminismTest, ByteIdenticalAcrossThreadCountsUnderFrozen) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  std::vector<std::string> traces;
  for (int threads : {1, 4}) {
    const std::string path = testing::TempDir() + "/obs_trace_t" +
                             std::to_string(threads) + ".jsonl";
    {
      JsonlTraceSink sink(path, JsonlTraceOptions::Deterministic());
      ASSERT_TRUE(sink.ok());
      RunContext context;
      context.sink = &sink;
      gp::RunTag3p(ToyConfig(threads), problem, context);
    }
    traces.push_back(ReadFile(path));
    ASSERT_FALSE(traces.back().empty());
  }
  EXPECT_EQ(traces[0], traces[1])
      << "deterministic traces diverged between 1 and 4 threads";
}

TEST(TraceDeterminismTest, SinkOnAndOffProduceIdenticalTrajectories) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  const gp::Tag3pResult off = gp::RunTag3p(ToyConfig(2), problem);

  VectorSink sink;
  RunContext context;
  context.sink = &sink;
  const gp::Tag3pResult on = gp::RunTag3p(ToyConfig(2), problem, context);
  EXPECT_FALSE(sink.events().empty());

  EXPECT_EQ(off.best.fitness, on.best.fitness);
  ASSERT_EQ(off.history.size(), on.history.size());
  for (std::size_t g = 0; g < off.history.size(); ++g) {
    EXPECT_EQ(off.history[g].best_fitness, on.history[g].best_fitness);
    EXPECT_EQ(off.history[g].mean_fitness, on.history[g].mean_fitness);
    EXPECT_EQ(off.history[g].best_size, on.history[g].best_size);
  }
}

// --------------------------------------------------------- trace reader ----

TEST(TraceSummaryTest, SummarizesARealSearchTrace) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  const std::string path = testing::TempDir() + "/obs_summary.jsonl";
  gp::Tag3pResult result;
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    RunContext context;
    context.sink = &sink;
    result = gp::RunTag3p(ToyConfig(1), problem, context);
  }

  std::vector<TraceRecord> records;
  const Status status = ReadTrace(path, &records);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_FALSE(records.empty());

  const TraceSummary summary = SummarizeTrace(records);
  EXPECT_EQ(summary.driver, "tag3p");
  EXPECT_EQ(summary.seed, 5u);
  EXPECT_EQ(summary.num_events, records.size());
  ASSERT_EQ(summary.curve.size(), 6u);  // one point per generation
  EXPECT_EQ(summary.curve.back().best_fitness, result.best.fitness);
  EXPECT_FALSE(summary.batches.empty());
  EXPECT_GT(summary.total_individuals, 0u);
  EXPECT_GT(summary.outcomes[static_cast<std::size_t>(EvalOutcome::kOk)],
            0u);

  // Every renderer produces non-trivial output on a real trace.
  const std::string text = RenderSummaryText(summary);
  EXPECT_NE(text.find("tag3p"), std::string::npos);
  EXPECT_NE(text.find("fitness"), std::string::npos);
  EXPECT_NE(RenderCurveCsv(summary).find("generation"), std::string::npos);
  EXPECT_NE(RenderBatchesCsv(summary).find("cum_hit_rate"),
            std::string::npos);
  EXPECT_NE(RenderOutcomesCsv(summary).find("ok"), std::string::npos);
}

}  // namespace
}  // namespace gmr::obs
