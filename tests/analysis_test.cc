// Static-analysis tests: interval transfer functions (including the
// protected-kernel edge cases), the expression/dead-input linter, TAG
// grammar diagnostics, the grammar spec loader, and the evaluator's static
// reject gate (including the end-to-end guarantee that a rejected candidate
// never reaches the integrator). Labeled `analysis` in ctest.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/activity.h"
#include "analysis/dataflow.h"
#include "analysis/grammar_io.h"
#include "analysis/grammar_lint.h"
#include "analysis/interval.h"
#include "analysis/lint.h"
#include "analysis/sign.h"
#include "analysis/static_gate.h"
#include "analysis/units.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/river_grammar.h"
#include "gp/evaluator.h"
#include "gp/individual.h"
#include "gp/parameter_prior.h"
#include "river/biology.h"
#include "river/dataset.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace gmr {
namespace {

namespace a = gmr::analysis;
namespace e = gmr::expr;
namespace t = gmr::tag;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- intervals ----

TEST(IntervalTest, PointAndPredicates) {
  const a::Interval p = a::Interval::Point(3.5);
  EXPECT_TRUE(p.IsPoint());
  EXPECT_TRUE(p.IsFinite());
  EXPECT_FALSE(p.CanBeInf());
  EXPECT_TRUE(p.Contains(3.5));
  EXPECT_FALSE(p.Contains(3.6));

  const a::Interval nan_point =
      a::Interval::Point(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(nan_point.maybe_nan);
  EXPECT_EQ(nan_point.lo, -kInf);
  EXPECT_EQ(nan_point.hi, kInf);

  EXPECT_TRUE(a::Interval::All().CanBeInf());
  EXPECT_FALSE(a::Interval::All().IsFinite());
  EXPECT_FALSE((a::Interval{kInf, kInf, false}).IsPoint());
}

TEST(IntervalTest, AddTracksInfMinusInf) {
  const a::Interval r =
      a::IntervalAdd(a::Interval::Of(0.0, kInf), a::Interval::Of(-kInf, 0.0));
  EXPECT_TRUE(r.maybe_nan);
  EXPECT_EQ(r.lo, -kInf);
  EXPECT_EQ(r.hi, kInf);

  const a::Interval clean =
      a::IntervalAdd(a::Interval::Of(1.0, 2.0), a::Interval::Of(10.0, 20.0));
  EXPECT_FALSE(clean.maybe_nan);
  EXPECT_DOUBLE_EQ(clean.lo, 11.0);
  EXPECT_DOUBLE_EQ(clean.hi, 22.0);
}

TEST(IntervalTest, SubIsAddOfNeg) {
  const a::Interval r =
      a::IntervalSub(a::Interval::Of(1.0, 2.0), a::Interval::Of(10.0, 20.0));
  EXPECT_DOUBLE_EQ(r.lo, -19.0);
  EXPECT_DOUBLE_EQ(r.hi, -8.0);
  // inf - inf (same sign) is NaN-capable.
  EXPECT_TRUE(a::IntervalSub(a::Interval::Of(0.0, kInf),
                             a::Interval::Of(0.0, kInf))
                  .maybe_nan);
}

TEST(IntervalTest, MulResolvesZeroTimesInfBounds) {
  // [0, 2] * [3, inf]: the bound candidate 0*inf resolves to 0, and NaN is
  // flagged because 0 * inf is genuinely reachable at runtime.
  const a::Interval r =
      a::IntervalMul(a::Interval::Of(0.0, 2.0), a::Interval::Of(3.0, kInf));
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_EQ(r.hi, kInf);
  EXPECT_TRUE(r.maybe_nan);

  const a::Interval clean =
      a::IntervalMul(a::Interval::Of(-2.0, 3.0), a::Interval::Of(-4.0, 5.0));
  EXPECT_DOUBLE_EQ(clean.lo, -12.0);  // 3 * -4
  EXPECT_DOUBLE_EQ(clean.hi, 15.0);   // 3 * 5
  EXPECT_FALSE(clean.maybe_nan);
}

TEST(IntervalTest, DivEntirelyInsideProtectionBandIsOne) {
  // Every denominator value is inside |d| < 1e-9, so the protected kernel
  // returns exactly 1 everywhere (the "empty denominator domain" edge).
  const a::Interval r = a::IntervalDiv(a::Interval::Of(5.0, 7.0),
                                       a::Interval::Of(1e-12, 1e-10));
  EXPECT_DOUBLE_EQ(r.lo, 1.0);
  EXPECT_DOUBLE_EQ(r.hi, 1.0);
  EXPECT_FALSE(r.maybe_nan);
}

TEST(IntervalTest, DivUnionsProtectedOneWithQuotientRange) {
  // Denominator [0, 2] reaches both the band (-> 1) and [eps, 2].
  const a::Interval r =
      a::IntervalDiv(a::Interval::Of(1.0, 1.0), a::Interval::Of(0.0, 2.0));
  EXPECT_DOUBLE_EQ(r.lo, 0.5);
  EXPECT_DOUBLE_EQ(r.hi, 1.0 / e::kDivEpsilon);
  EXPECT_FALSE(r.maybe_nan);
}

TEST(IntervalTest, DivByInfiniteDenominatorReachesZero) {
  const a::Interval r =
      a::IntervalDiv(a::Interval::Of(1.0, 2.0), a::Interval::Of(1.0, kInf));
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_DOUBLE_EQ(r.hi, 2.0);
  EXPECT_FALSE(r.maybe_nan);
  // inf / inf is NaN-capable.
  EXPECT_TRUE(a::IntervalDiv(a::Interval::Of(1.0, kInf),
                             a::Interval::Of(1.0, kInf))
                  .maybe_nan);
}

TEST(IntervalTest, DivSignSplitExcludesBand) {
  const a::Interval r =
      a::IntervalDiv(a::Interval::Of(1.0, 1.0), a::Interval::Of(-2.0, 2.0));
  // Negative part gives [-1/eps, -0.5], positive part [0.5, 1/eps], band
  // contributes {1}.
  EXPECT_DOUBLE_EQ(r.lo, -1.0 / e::kDivEpsilon);
  EXPECT_DOUBLE_EQ(r.hi, 1.0 / e::kDivEpsilon);
}

TEST(IntervalTest, LogMatchesProtectedKernel) {
  // Entirely inside the |x| < 1e-12 band: constant 0.
  const a::Interval banded =
      a::IntervalLog(a::Interval::Of(-1e-13, 1e-13));
  EXPECT_DOUBLE_EQ(banded.lo, 0.0);
  EXPECT_DOUBLE_EQ(banded.hi, 0.0);

  // Positive range away from the band: plain log.
  const a::Interval pos = a::IntervalLog(a::Interval::Of(1.0, 10.0));
  EXPECT_DOUBLE_EQ(pos.lo, 0.0);
  EXPECT_DOUBLE_EQ(pos.hi, std::log(10.0));

  // Sign-crossing range: |x| reaches 0, so the result is bounded below by
  // log(kLogEpsilon) and includes the protected 0.
  const a::Interval cross = a::IntervalLog(a::Interval::Of(-5.0, 20.0));
  EXPECT_DOUBLE_EQ(cross.lo, std::log(e::kLogEpsilon));
  EXPECT_DOUBLE_EQ(cross.hi, std::log(20.0));

  // Negative range: log(|x|).
  const a::Interval neg = a::IntervalLog(a::Interval::Of(-8.0, -2.0));
  EXPECT_DOUBLE_EQ(neg.lo, std::log(2.0));
  EXPECT_DOUBLE_EQ(neg.hi, std::log(8.0));

  // log(inf) stays inf.
  EXPECT_EQ(a::IntervalLog(a::Interval::Of(1.0, kInf)).hi, kInf);
}

TEST(IntervalTest, ExpClampsAtEighty) {
  const a::Interval r = a::IntervalExp(a::Interval::Of(90.0, 200.0));
  EXPECT_DOUBLE_EQ(r.lo, std::exp(e::kExpArgClamp));
  EXPECT_DOUBLE_EQ(r.hi, std::exp(e::kExpArgClamp));
  EXPECT_TRUE(a::IntervalExp(a::Interval::Of(-kInf, kInf)).IsFinite());
}

TEST(IntervalTest, MinMaxWidenToHullUnderNan) {
  // The scalar kernel `a < b ? a : b` returns the RIGHT operand when a is
  // NaN, so min([0,1]?NaN, [5,9]) can produce 7 — only the hull is sound.
  a::Interval left = a::Interval::Of(0.0, 1.0);
  left.maybe_nan = true;
  const a::Interval right = a::Interval::Of(5.0, 9.0);
  const a::Interval r = a::IntervalMin(left, right);
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_DOUBLE_EQ(r.hi, 9.0);
  EXPECT_TRUE(r.maybe_nan);

  const a::Interval clean_min =
      a::IntervalMin(a::Interval::Of(0.0, 4.0), a::Interval::Of(2.0, 9.0));
  EXPECT_DOUBLE_EQ(clean_min.lo, 0.0);
  EXPECT_DOUBLE_EQ(clean_min.hi, 4.0);
  const a::Interval clean_max =
      a::IntervalMax(a::Interval::Of(0.0, 4.0), a::Interval::Of(2.0, 9.0));
  EXPECT_DOUBLE_EQ(clean_max.lo, 2.0);
  EXPECT_DOUBLE_EQ(clean_max.hi, 9.0);
}

TEST(IntervalTest, SquareIsNonNegative) {
  const a::Interval r = a::IntervalSquare(a::Interval::Of(-3.0, 2.0));
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_DOUBLE_EQ(r.hi, 9.0);
  const a::Interval neg = a::IntervalSquare(a::Interval::Of(-5.0, -2.0));
  EXPECT_DOUBLE_EQ(neg.lo, 4.0);
  EXPECT_DOUBLE_EQ(neg.hi, 25.0);
}

TEST(IntervalTest, EvaluateUsesCorrelationAwareRules) {
  a::DomainEnv env;
  env.variables = {a::Interval::Of(-3.0, 2.0)};
  const e::ExprPtr x = e::Variable(0, "x");

  // x * x is a square, not a general product (which would give [-6, 9]).
  const a::Interval sq = a::EvaluateInterval(*e::Mul(x, x), env);
  EXPECT_DOUBLE_EQ(sq.lo, 0.0);
  EXPECT_DOUBLE_EQ(sq.hi, 9.0);

  // x - x is exactly 0 and x / x exactly 1 for finite x.
  const a::Interval sub = a::EvaluateInterval(*e::Sub(x, x), env);
  EXPECT_TRUE(sub.IsPoint());
  EXPECT_DOUBLE_EQ(sub.lo, 0.0);
  const a::Interval div = a::EvaluateInterval(*e::Div(x, x), env);
  EXPECT_TRUE(div.IsPoint());
  EXPECT_DOUBLE_EQ(div.lo, 1.0);
  EXPECT_DOUBLE_EQ(
      a::EvaluateInterval(*e::Min(x, x), env).lo, -3.0);

  // With an unbounded operand the identities pick up the NaN bit
  // (inf - inf, inf / inf).
  env.variables[0] = a::Interval::Of(0.0, kInf);
  EXPECT_TRUE(a::EvaluateInterval(*e::Sub(x, x), env).maybe_nan);
  EXPECT_TRUE(a::EvaluateInterval(*e::Div(x, x), env).maybe_nan);
}

TEST(IntervalTest, EvaluateUnknownSlotsAreUnconstrained) {
  const a::DomainEnv env;  // no slot information at all
  const a::Interval r =
      a::EvaluateInterval(*e::Variable(4, "v"), env);
  EXPECT_EQ(r.lo, -kInf);
  EXPECT_EQ(r.hi, kInf);
}

TEST(IntervalTest, ParametersInDomain) {
  a::DomainEnv env;
  env.parameters = {a::Interval::Of(0.0, 1.0), a::Interval::Of(2.0, 3.0)};
  EXPECT_TRUE(a::ParametersInDomain({0.5, 2.5}, env));
  EXPECT_FALSE(a::ParametersInDomain({1.5, 2.5}, env));
  EXPECT_FALSE(a::ParametersInDomain(
      {std::numeric_limits<double>::quiet_NaN(), 2.5}, env));
  // Slots beyond the env are unconstrained.
  EXPECT_TRUE(a::ParametersInDomain({0.5, 2.5, 1e9}, env));
}

// ---------------------------------------------------------------- linter ----

a::DomainEnv SmallEnv() {
  a::DomainEnv env;
  env.variables = {a::Interval::Of(0.0, 10.0), a::Interval::Of(-5.0, 5.0)};
  env.parameters = {a::Interval::Of(0.0, 1.0), a::Interval::Of(0.5, 2.0)};
  return env;
}

a::LintOptions SmallOptions() {
  a::LintOptions options;
  options.num_states = 2;
  options.variable_names = {"v0", "v1"};
  options.parameter_names = {"p0", "p1"};
  return options;
}

const a::Diagnostic* FindCode(const a::LintResult& result,
                              const std::string& code) {
  for (const a::Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::size_t CountCode(const a::LintResult& result, const std::string& code) {
  std::size_t n = 0;
  for (const a::Diagnostic& d : result.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

TEST(LintTest, FormatAddressAndDiagnostic) {
  a::Diagnostic d;
  d.severity = a::Severity::kError;
  d.code = "div-by-zero";
  d.equation = 0;
  d.address = {1, 0, 2};
  d.message = "boom";
  EXPECT_EQ(a::FormatAddress(d), "eq0:1.0.2");
  EXPECT_EQ(a::FormatDiagnostic(d), "eq0:1.0.2: error [div-by-zero] boom");
  d.address.clear();
  EXPECT_EQ(a::FormatAddress(d), "eq0");
  d.equation = -1;
  EXPECT_EQ(a::FormatAddress(d), "-");
}

TEST(LintTest, ProvableDivisionByZero) {
  // v1 - v1 is identically zero, so the denominator lives in the band.
  const e::ExprPtr v1 = e::Variable(1, "v1");
  const std::vector<e::ExprPtr> eqs{
      e::Div(e::Variable(0, "v0"), e::Sub(v1, v1)),
      e::Variable(1, "v1")};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), SmallOptions());
  const a::Diagnostic* d = FindCode(result, "div-by-zero");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, a::Severity::kError);
  EXPECT_EQ(d->equation, 0);
  EXPECT_TRUE(d->address.empty());  // addressed to the division node
  EXPECT_TRUE(result.HasErrors());
  // The always-protected division makes both operands dead: v0 is
  // referenced but not live.
  EXPECT_EQ(result.referenced_variables, (std::vector<int>{0, 1}));
  EXPECT_EQ(result.live_variables, (std::vector<int>{1}));
}

TEST(LintTest, DivMayVanishIsAWarning) {
  // v1 spans [-5, 5]: the denominator can enter the band but need not.
  const std::vector<e::ExprPtr> eqs{
      e::Div(e::Variable(0, "v0"), e::Variable(1, "v1"))};
  a::LintOptions options = SmallOptions();
  options.num_states = 0;
  const a::LintResult result = a::LintEquations(eqs, SmallEnv(), options);
  const a::Diagnostic* d = FindCode(result, "div-may-vanish");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, a::Severity::kWarning);
  EXPECT_EQ(FindCode(result, "div-by-zero"), nullptr);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_TRUE(result.HasWarnings());
}

TEST(LintTest, LogDiagnostics) {
  const e::ExprPtr v1 = e::Variable(1, "v1");
  {
    // Argument can be non-positive: warning.
    const std::vector<e::ExprPtr> eqs{e::Log(v1)};
    a::LintOptions options;
    const a::LintResult result = a::LintEquations(eqs, SmallEnv(), options);
    const a::Diagnostic* d = FindCode(result, "log-nonpositive");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, a::Severity::kWarning);
  }
  {
    // Argument identically zero: error.
    const std::vector<e::ExprPtr> eqs{e::Log(e::Sub(v1, v1))};
    a::LintOptions options;
    const a::LintResult result = a::LintEquations(eqs, SmallEnv(), options);
    const a::Diagnostic* d = FindCode(result, "log-of-zero");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, a::Severity::kError);
  }
  {
    // Strictly positive argument: clean.
    const std::vector<e::ExprPtr> eqs{
        e::Log(e::Add(e::Variable(0, "v0"), e::Constant(1.0)))};
    a::LintOptions options;
    const a::LintResult result = a::LintEquations(eqs, SmallEnv(), options);
    EXPECT_EQ(FindCode(result, "log-nonpositive"), nullptr);
    EXPECT_EQ(FindCode(result, "log-of-zero"), nullptr);
  }
}

TEST(LintTest, ExpDiagnostics) {
  {
    // Always past the clamp: error.
    const std::vector<e::ExprPtr> eqs{
        e::Exp(e::Add(e::Constant(100.0), e::Variable(0, "v0")))};
    const a::LintResult result =
        a::LintEquations(eqs, SmallEnv(), a::LintOptions{});
    const a::Diagnostic* d = FindCode(result, "exp-overflow");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, a::Severity::kError);
  }
  {
    // Can exceed the clamp on part of the range: warning.
    const std::vector<e::ExprPtr> eqs{
        e::Exp(e::Mul(e::Constant(10.0), e::Variable(0, "v0")))};
    const a::LintResult result =
        a::LintEquations(eqs, SmallEnv(), a::LintOptions{});
    const a::Diagnostic* d = FindCode(result, "exp-may-overflow");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, a::Severity::kWarning);
    EXPECT_EQ(FindCode(result, "exp-overflow"), nullptr);
  }
}

TEST(LintTest, ConstantFoldableSubtreeNotedOnceAtMaximalNode) {
  // (v0 + 2) / (v0 + 2) is provably 1 — the guarded syntactic simplifier
  // (soundly) declines to fold it, interval analysis proves it.
  const e::ExprPtr sum = e::Add(e::Variable(0, "v0"), e::Constant(2.0));
  const std::vector<e::ExprPtr> eqs{e::Mul(e::Div(sum, sum),
                                           e::Variable(1, "v1"))};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), a::LintOptions{});
  EXPECT_EQ(CountCode(result, "constant-foldable"), 1u);
  const a::Diagnostic* d = FindCode(result, "constant-foldable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, a::Severity::kNote);
  EXPECT_EQ(d->address, (std::vector<int>{0}));  // the Div node
}

TEST(LintTest, DominatedBranchesAndLiveness) {
  // min(1, v0 + 5): v0 + 5 spans [5, 15], so the constant always wins.
  const std::vector<e::ExprPtr> eqs{
      e::Min(e::Constant(1.0),
             e::Add(e::Variable(0, "v0"), e::Constant(5.0)))};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), a::LintOptions{});
  const a::Diagnostic* d = FindCode(result, "dominated-branch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->address, (std::vector<int>{1}));
  // v0 only occurs under the dominated branch: referenced but dead.
  EXPECT_EQ(result.referenced_variables, (std::vector<int>{0}));
  EXPECT_TRUE(result.live_variables.empty());

  // The note is suppressible.
  a::LintOptions quiet;
  quiet.note_dominated_branches = false;
  EXPECT_EQ(FindCode(a::LintEquations(eqs, SmallEnv(), quiet),
                     "dominated-branch"),
            nullptr);
}

TEST(LintTest, MulByProvableZeroKillsLiveness) {
  // 0 * p1 contributes nothing: p1 is referenced but dead, p0 is live.
  const std::vector<e::ExprPtr> eqs{
      e::Add(e::Mul(e::Constant(0.0), e::Parameter(1, "p1")),
             e::Parameter(0, "p0"))};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), SmallOptions());
  EXPECT_EQ(result.referenced_parameters, (std::vector<int>{0, 1}));
  EXPECT_EQ(result.live_parameters, (std::vector<int>{0}));
  const a::Diagnostic* dead = FindCode(result, "dead-parameter");
  ASSERT_NE(dead, nullptr);
  EXPECT_NE(dead->message.find("p1"), std::string::npos);
  EXPECT_NE(dead->message.find("cannot affect"), std::string::npos);
}

TEST(LintTest, UndeclaredAndDeadInputs) {
  // Equation uses v0 and p0 only; v1 is a state with no path, p1 declared
  // but never referenced.
  const std::vector<e::ExprPtr> eqs{
      e::Mul(e::Variable(0, "v0"), e::Parameter(0, "p0")),
      e::Variable(0, "v0")};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), SmallOptions());
  const a::Diagnostic* dead_state = FindCode(result, "dead-state-variable");
  ASSERT_NE(dead_state, nullptr);
  EXPECT_NE(dead_state->message.find("v1"), std::string::npos);
  const a::Diagnostic* dead_param = FindCode(result, "dead-parameter");
  ASSERT_NE(dead_param, nullptr);
  EXPECT_NE(dead_param->message.find("p1"), std::string::npos);
  EXPECT_NE(dead_param->message.find("never referenced"), std::string::npos);
}

TEST(LintTest, NonFiniteRootIsAnError) {
  const std::vector<e::ExprPtr> eqs{e::Constant(-kInf)};
  const a::LintResult result =
      a::LintEquations(eqs, SmallEnv(), a::LintOptions{});
  const a::Diagnostic* d = FindCode(result, "non-finite-output");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, a::Severity::kError);
  EXPECT_TRUE(d->address.empty());
}

// ------------------------------------------------- river model (no FPs) ----

TEST(LintTest, ExpertRiverModelIsClean) {
  a::LintOptions options;
  options.num_states = 2;
  options.variable_names = river::VariableNames();
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    options.parameter_names.push_back(river::ParameterName(slot));
  }
  const a::LintResult result = a::LintEquations(
      river::ManualProcess(), river::LintDomains(), options);
  for (const a::Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << "unexpected diagnostic: " << a::FormatDiagnostic(d);
  }
  // Every Table III parameter has a live data-flow path.
  EXPECT_EQ(result.live_parameters.size(),
            static_cast<std::size_t>(river::kNumParameters));
}

TEST(LintTest, TruncatedRiverModelHasDeadParameters) {
  // Dropping the zooplankton equation orphans the zoo-only parameters.
  a::LintOptions options;
  options.num_states = 2;
  options.variable_names = river::VariableNames();
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    options.parameter_names.push_back(river::ParameterName(slot));
  }
  const std::vector<e::ExprPtr> eqs{river::PhytoplanktonDerivative()};
  const a::LintResult result =
      a::LintEquations(eqs, river::LintDomains(), options);
  EXPECT_EQ(CountCode(result, "dead-parameter"), 4u);
  std::vector<std::string> dead;
  for (const a::Diagnostic& d : result.diagnostics) {
    if (d.code != "dead-parameter") continue;
    for (const char* name : {"C_UZ", "C_BRZ", "C_DZ", "C_BMT"}) {
      if (d.message.find(name) != std::string::npos) dead.push_back(name);
    }
  }
  EXPECT_EQ(dead.size(), 4u);
  // B_Zoo still appears (grazing term), so no dead-state warning.
  EXPECT_EQ(FindCode(result, "dead-state-variable"), nullptr);
}

// -------------------------------------------------------- grammar linting ----

TEST(GrammarLintTest, RiverGrammarIsWarningCleanWithExpectedDepths) {
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const a::GrammarLintResult result = a::LintGrammar(knowledge.grammar);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_FALSE(result.HasWarnings());
  EXPECT_TRUE(result.unreachable_betas.empty());
  EXPECT_TRUE(result.nonproductive_labels.empty());
  // Connector labels live in the seed alpha (depth 0); extender labels are
  // exposed by adjoining a connector beta (depth 1).
  ASSERT_TRUE(result.label_depth.count("ExtC1"));
  EXPECT_EQ(result.label_depth.at("ExtC1"), 0);
  ASSERT_TRUE(result.label_depth.count("ExtE1"));
  EXPECT_EQ(result.label_depth.at("ExtE1"), 1);
}

TEST(GrammarLintTest, UnreachableBetaIsFlagged) {
  std::istringstream spec(R"(# gmr-grammar v1
slot R 0.0 1.0
alpha seed Exp : B_Phy + R
beta grow Exp : FOOT * R
beta orphan ExtQ : FOOT + V_n
)");
  t::Grammar grammar;
  std::string error;
  ASSERT_TRUE(a::ParseGrammarSpec(spec, river::RiverSymbols(), &grammar,
                                  &error))
      << error;
  const a::GrammarLintResult result = a::LintGrammar(grammar);
  EXPECT_EQ(result.unreachable_betas, (std::vector<int>{1}));
  EXPECT_TRUE(result.HasWarnings());
  EXPECT_FALSE(result.HasErrors());
}

TEST(GrammarLintTest, NonFiniteSlotSpecIsNonProductive) {
  std::istringstream spec(R"(# gmr-grammar v1
slot R 0.0 inf
alpha seed Exp : B_Phy + R
beta grow Exp : FOOT * R
)");
  t::Grammar grammar;
  std::string error;
  ASSERT_TRUE(a::ParseGrammarSpec(spec, river::RiverSymbols(), &grammar,
                                  &error))
      << error;
  const a::GrammarLintResult result = a::LintGrammar(grammar);
  EXPECT_TRUE(result.HasErrors());
  ASSERT_EQ(result.nonproductive_labels.size(), 1u);
  EXPECT_EQ(result.nonproductive_labels[0], "R");
}

TEST(GrammarLintTest, GrammarWithoutAlphaTreesIsAnError) {
  const a::GrammarLintResult result = a::LintGrammar(t::Grammar{});
  EXPECT_TRUE(result.HasErrors());
}

TEST(GrammarIoTest, LoaderRejectsStructuralMistakesBeforeTheAbortingApi) {
  const auto parse = [](const std::string& text, std::string* error) {
    std::istringstream in(text);
    t::Grammar grammar;
    return a::ParseGrammarSpec(in, river::RiverSymbols(), &grammar, error);
  };
  std::string error;
  // Slot spec with lo > hi would abort inside Grammar::SetSlotSpec.
  EXPECT_FALSE(parse("# gmr-grammar v1\nslot R 1.0 0.0\n"
                     "alpha a Exp : B_Phy\n",
                     &error));
  EXPECT_NE(error.find("lo > hi"), std::string::npos);
  // FOOT in an alpha tree.
  EXPECT_FALSE(parse("# gmr-grammar v1\nalpha a Exp : FOOT + B_Phy\n",
                     &error));
  EXPECT_NE(error.find("must not contain FOOT"), std::string::npos);
  // Beta trees need exactly one FOOT (zero and two both abort in
  // ElementaryTree).
  EXPECT_FALSE(parse("# gmr-grammar v1\nbeta b Exp : B_Phy + V_n\n",
                     &error));
  EXPECT_NE(error.find("exactly one FOOT"), std::string::npos);
  EXPECT_FALSE(parse("# gmr-grammar v1\nbeta b Exp : FOOT + FOOT\n",
                     &error));
  EXPECT_NE(error.find("exactly one FOOT"), std::string::npos);
  // Header and content requirements.
  EXPECT_FALSE(parse("alpha a Exp : B_Phy\n", &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(parse("# gmr-grammar v1\n", &error));
  EXPECT_NE(error.find("no trees"), std::string::npos);
  EXPECT_FALSE(parse("# gmr-grammar v1\nfrob x\n", &error));
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);
  // Unknown identifiers surface the parser diagnostic.
  EXPECT_FALSE(parse("# gmr-grammar v1\nalpha a Exp : B_Typo\n", &error));
  EXPECT_NE(error.find("bad expression"), std::string::npos);
}

// ------------------------------------------------------------ static gate ----

TEST(StaticGateTest, RejectsProvablyNonFiniteAndSaturatingCandidates) {
  a::StaticGateConfig config;
  config.enabled = true;
  config.domains.variables = {a::Interval::Of(0.01, kInf)};
  // Default rate (+inf): only provably non-finite right-hand sides.
  {
    const std::vector<e::ExprPtr> eqs{e::Constant(-kInf)};
    const a::StaticVerdict verdict = a::AnalyzeCandidate(eqs, config);
    EXPECT_TRUE(verdict.reject);
    EXPECT_EQ(verdict.equation, 0);
  }
  {
    // Divergence toward the floor (huge negative derivative) is NOT
    // rejectable: the clamp floor absorbs it without a watchdog.
    const std::vector<e::ExprPtr> eqs{
        e::Mul(e::Constant(-1e9), e::Variable(0, "x"))};
    EXPECT_FALSE(a::AnalyzeCandidate(eqs, config).reject);
  }
  // With a finite saturation rate, a provably huge positive derivative is
  // rejected; a merely possibly-huge one is not.
  config.saturation_rate = 2e4;
  {
    const std::vector<e::ExprPtr> eqs{
        e::Mul(e::Constant(1e9), e::Variable(0, "x"))};
    const a::StaticVerdict verdict = a::AnalyzeCandidate(eqs, config);
    EXPECT_TRUE(verdict.reject);
    EXPECT_NE(verdict.reason.find("saturates"), std::string::npos);
  }
  {
    // Range [-1e9 * x.hi, ...] includes small values: must pass.
    const std::vector<e::ExprPtr> eqs{
        e::Sub(e::Mul(e::Constant(1e9), e::Variable(0, "x")),
               e::Mul(e::Constant(2e9), e::Variable(0, "x")))};
    EXPECT_FALSE(a::AnalyzeCandidate(eqs, config).reject);
  }
  // The expert process passes the river gate.
  const a::StaticGateConfig river_gate =
      river::MakeStaticGate(river::SimulationConfig{}, nullptr);
  EXPECT_FALSE(
      a::AnalyzeCandidate(river::ManualProcess(), river_gate).reject);
}

// --------------------------------------------- evaluator gate integration ----

river::RiverDataset TinyDataset(std::size_t days) {
  river::RiverDataset dataset;
  dataset.num_days = days;
  dataset.drivers.assign(river::kNumVariables, {});
  for (int slot : river::ObservedVariableSlots()) {
    dataset.drivers[static_cast<std::size_t>(slot)] =
        std::vector<double>(days, 1.0);
  }
  dataset.observed_bphy = std::vector<double>(days, 5.0);
  dataset.train_end = days / 2;
  return dataset;
}

/// River grammar plus one extra alpha tree whose phenotype provably
/// saturates the clamp: dB_Phy/dt = 1e9 * B_Phy >= 1e7 everywhere.
struct GateFixture {
  GateFixture()
      : knowledge(core::BuildRiverPriorKnowledge()), dataset(TinyDataset(40)) {
    std::vector<t::TagNodePtr> equations;
    equations.push_back(t::FromExpr(
        e::Mul(e::Constant(1e9), e::Variable(river::kBPhy, "B_Phy")),
        t::kExpSymbol));
    equations.push_back(t::FromExpr(e::Constant(0.0), t::kExpSymbol));
    divergent_alpha = knowledge.grammar.AddAlphaTree(
        t::ElementaryTree("divergent", t::SystemNode(std::move(equations))));
  }

  gp::Individual MakeDivergent(unsigned seed) {
    Rng rng(seed);
    gp::Individual individual;
    individual.genotype =
        t::NewSeedDerivation(knowledge.grammar, divergent_alpha, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    return individual;
  }

  core::RiverPriorKnowledge knowledge;
  river::RiverDataset dataset;
  int divergent_alpha = -1;
};

TEST(EvaluatorGateTest, StaticallyRejectedCandidateNeverReachesIntegrator) {
  GateFixture fx;
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&fx.dataset, sim);
  gp::SpeedupConfig config;
  config.static_gate = river::MakeStaticGate(sim, &fx.dataset);
  gp::FitnessEvaluator evaluator(&fx.knowledge.grammar, &fitness, config);

  // If the integrator ran at all, this injection would trip the
  // non-finite-derivative watchdog and the outcome would be
  // kNonFiniteDerivative instead of kStaticReject.
  std::string error;
  ASSERT_TRUE(SetFaultSpec("derivative_nan:always", &error)) << error;
  gp::Individual individual = fx.MakeDivergent(11);
  evaluator.Evaluate(&individual);
  ClearFaults();

  EXPECT_EQ(individual.outcome, EvalOutcome::kStaticReject);
  EXPECT_DOUBLE_EQ(individual.fitness, kPenaltyFitness);
  EXPECT_TRUE(individual.fully_evaluated);
  EXPECT_EQ(evaluator.stats().static_rejects, 1u);
  EXPECT_EQ(evaluator.stats().outcomes[static_cast<std::size_t>(
                EvalOutcome::kStaticReject)],
            1u);
  // No integration work: zero time steps, no full evaluations, no cache
  // traffic (rejects bypass the tree cache entirely).
  EXPECT_EQ(evaluator.stats().time_steps_evaluated, 0u);
  EXPECT_EQ(evaluator.stats().full_evaluations, 0u);
  EXPECT_EQ(evaluator.stats().cache_lookups, 0u);
  EXPECT_EQ(evaluator.cache_size(), 0u);
  // The frontier is untouched by the penalty.
  EXPECT_EQ(evaluator.best_prev_full(), kInf);
}

TEST(EvaluatorGateTest, VerdictIsCachedByStructure) {
  GateFixture fx;
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&fx.dataset, sim);
  gp::SpeedupConfig config;
  config.static_gate = river::MakeStaticGate(sim, &fx.dataset);
  gp::FitnessEvaluator evaluator(&fx.knowledge.grammar, &fitness, config);

  gp::Individual first = fx.MakeDivergent(3);
  gp::Individual second = fx.MakeDivergent(4);
  // Different (in-domain) parameters, same structure: one verdict entry.
  second.parameters[0] = fx.knowledge.priors[0].lo;
  evaluator.Evaluate(&first);
  evaluator.Evaluate(&second);
  EXPECT_EQ(evaluator.stats().static_rejects, 2u);
  EXPECT_EQ(evaluator.verdict_cache_size(), 1u);
  EXPECT_EQ(second.outcome, EvalOutcome::kStaticReject);
}

TEST(EvaluatorGateTest, OutOfDomainParametersSkipTheGate) {
  GateFixture fx;
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&fx.dataset, sim);
  gp::SpeedupConfig config;
  config.static_gate = river::MakeStaticGate(sim, &fx.dataset);
  gp::FitnessEvaluator evaluator(&fx.knowledge.grammar, &fitness, config);

  // Finite but outside the prior boxes: the structure-keyed verdict is not
  // trustworthy, so the candidate must integrate (and the watchdog, not
  // the gate, contains it).
  gp::Individual individual = fx.MakeDivergent(5);
  individual.parameters.assign(individual.parameters.size(), 1e6);
  evaluator.Evaluate(&individual);
  EXPECT_NE(individual.outcome, EvalOutcome::kStaticReject);
  EXPECT_EQ(evaluator.stats().static_rejects, 0u);
  EXPECT_GT(evaluator.stats().time_steps_evaluated, 0u);
}

TEST(EvaluatorGateTest, GateOnIsBitIdenticalToGateOffOnCleanPopulation) {
  core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const river::RiverDataset dataset = TinyDataset(40);
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset, sim);

  gp::SpeedupConfig off;
  off.tree_caching = true;
  off.short_circuiting = true;
  gp::SpeedupConfig on = off;
  on.static_gate = river::MakeStaticGate(sim, &dataset);

  gp::FitnessEvaluator evaluator_off(&knowledge.grammar, &fitness, off);
  gp::FitnessEvaluator evaluator_on(&knowledge.grammar, &fitness, on);

  Rng rng(97);
  for (int i = 0; i < 16; ++i) {
    gp::Individual a_ind;
    a_ind.genotype = t::GrowRandom(knowledge.grammar, 0, 6 + i % 5, rng);
    a_ind.parameters = gp::PriorMeans(knowledge.priors);
    gp::Individual b_ind = a_ind.Clone();
    evaluator_off.Evaluate(&a_ind);
    evaluator_on.Evaluate(&b_ind);
    ASSERT_EQ(a_ind.fitness, b_ind.fitness) << "individual " << i;
    ASSERT_EQ(a_ind.outcome, b_ind.outcome) << "individual " << i;
    ASSERT_EQ(a_ind.fully_evaluated, b_ind.fully_evaluated)
        << "individual " << i;
  }
  // The random river population is clean: nothing was rejected, so the two
  // evaluators took identical code paths (same cache, same frontier).
  EXPECT_EQ(evaluator_on.stats().static_rejects, 0u);
  EXPECT_EQ(evaluator_on.best_prev_full(), evaluator_off.best_prev_full());
  EXPECT_EQ(evaluator_on.cache_size(), evaluator_off.cache_size());
}

TEST(EvalStatsTest, MergeAddsStaticRejects) {
  gp::EvalStats stats;
  stats.static_rejects = 2;
  gp::EvalStats other;
  other.static_rejects = 5;
  other.outcomes[static_cast<std::size_t>(EvalOutcome::kStaticReject)] = 5;
  stats.Merge(other);
  EXPECT_EQ(stats.static_rejects, 7u);
  EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(
                EvalOutcome::kStaticReject)],
            5u);
}

TEST(EvalOutcomeTest, StaticRejectNameAndPenaltyClass) {
  EXPECT_STREQ(EvalOutcomeName(EvalOutcome::kStaticReject), "static_reject");
  EXPECT_TRUE(IsPenalizedOutcome(EvalOutcome::kStaticReject));
}

// ------------------------------------------------------ dataflow framework ----

TEST(DataflowTest, SharedSubtreesAreEvaluatedOncePerPass) {
  a::DomainEnv env;
  env.variables = {a::Interval::Of(1.0, 2.0)};
  const e::ExprPtr x = e::Variable(0, "x");
  // Add(x, x) shares the x node; the memo must visit it once.
  const e::ExprPtr sum = e::Add(x, x);
  a::DataflowPass<a::IntervalDomain> pass(a::IntervalDomain{&env});
  const a::Interval value = pass.Evaluate(*sum);
  EXPECT_DOUBLE_EQ(value.lo, 2.0);
  EXPECT_DOUBLE_EQ(value.hi, 4.0);
  EXPECT_EQ(pass.nodes_visited(), 2u);
  // Re-evaluating hits the memo: no new nodes.
  pass.Evaluate(*sum);
  EXPECT_EQ(pass.nodes_visited(), 2u);
}

TEST(DataflowTest, WalkAddressesHandsOutChildIndexPaths) {
  const e::ExprPtr tree =
      e::Add(e::Variable(0, "x"), e::Mul(e::Constant(2.0), e::Variable(0, "x")));
  std::vector<std::vector<int>> addresses;
  a::WalkAddresses(*tree, [&](const e::Expr&, const std::vector<int>& address) {
    addresses.push_back(address);
  });
  const std::vector<std::vector<int>> want = {
      {}, {0}, {1}, {1, 0}, {1, 1}};
  EXPECT_EQ(addresses, want);
}

// ------------------------------------------------------------- units pass ----

TEST(UnitsTest, FormatDimSpellings) {
  EXPECT_EQ(a::FormatDim(a::Dim::Any()), "?");
  EXPECT_EQ(a::FormatDim(a::Dim::Dimensionless()), "1");
  EXPECT_EQ(a::FormatDim(a::Dim::Concentration()), "M*L^-3");
  EXPECT_EQ(a::FormatDim(a::Dim::PerTime()), "T^-1");
}

TEST(UnitsTest, ConstantsArePolymorphic) {
  const a::UnitsEnv env = river::RiverUnitsEnv();
  // B_Phy + 3 is fine: the constant absorbs M·L⁻³, like the paper's R.
  const e::ExprPtr ok =
      e::Add(e::Variable(river::kBPhy, "B_Phy"), e::Constant(3.0));
  const a::UnitsResult result = a::AnalyzeUnits(*ok, env);
  EXPECT_TRUE(result.Consistent());
  EXPECT_EQ(result.dim, a::Dim::Concentration());
}

TEST(UnitsTest, MismatchedSumIsFlaggedOnceAndRecoversWithAny) {
  const a::UnitsEnv env = river::RiverUnitsEnv();
  // Θ + L is a provable mismatch; the enclosing product must not cascade
  // into a second finding.
  const e::ExprPtr bad = e::Mul(
      e::Add(e::Variable(river::kVtmp, "V_tmp"),
             e::Variable(river::kVsd, "V_sd")),
      e::Variable(river::kBPhy, "B_Phy"));
  const a::UnitsResult result = a::AnalyzeUnits(*bad, env);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_STREQ(result.findings[0].code, "units-mismatch");
  EXPECT_FALSE(result.dim.known);
}

TEST(UnitsTest, TranscendentalArgumentsMustBeDimensionless) {
  const a::UnitsEnv env = river::RiverUnitsEnv();
  const e::ExprPtr bad = e::Log(e::Variable(river::kVn, "V_n"));
  const a::UnitsResult result = a::AnalyzeUnits(*bad, env);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_STREQ(result.findings[0].code, "units-transcendental");
  EXPECT_TRUE(result.dim.IsDimensionless());
  // A dimensionless ratio is fine: V_n / (C_N + V_n).
  const e::ExprPtr ok = e::Log(
      e::Div(e::Variable(river::kVn, "V_n"),
             e::Add(e::Parameter(river::kCN, "C_N"),
                    e::Variable(river::kVn, "V_n"))));
  EXPECT_TRUE(a::AnalyzeUnits(*ok, env).Consistent());
}

TEST(UnitsTest, ExpertRiverProcessIsDimensionallyConsistent) {
  const a::SystemUnitsResult result =
      a::AnalyzeSystemUnits(river::ManualProcess(), river::RiverUnitsEnv());
  EXPECT_TRUE(result.Consistent());
  ASSERT_EQ(result.equations.size(), 2u);
  // Both derivatives come out as concentration per time.
  EXPECT_EQ(result.equations[0].dim, a::Dim::Of(1, -3, -1));
  EXPECT_EQ(result.equations[1].dim, a::Dim::Of(1, -3, -1));
}

// -------------------------------------------------------------- sign pass ----

TEST(SignTest, SignOfIntervalAndFormatting) {
  EXPECT_EQ(a::SignOfInterval(a::Interval::Of(0.5, 2.0)), a::kSignPos);
  EXPECT_EQ(a::SignOfInterval(a::Interval::Of(-2.0, -0.5)), a::kSignNeg);
  EXPECT_EQ(a::SignOfInterval(a::Interval::Of(-1.0, 1.0)),
            a::kSignNeg | a::kSignZero | a::kSignPos);
  EXPECT_EQ(a::FormatSignSet(a::kSignNeg), "{-}");
  EXPECT_EQ(a::FormatSignSet(a::kSignAll), "{-,0,+,NaN}");
}

TEST(SignTest, ProtectedDivisionAlwaysReachesPositive) {
  // The protection band maps |denominator| < eps to 1, so every division
  // can produce a positive value regardless of operand signs.
  EXPECT_NE(a::ApplyBinarySign(e::NodeKind::kDiv, a::kSignNeg, a::kSignPos) &
                a::kSignPos,
            0);
}

TEST(SignTest, StrictlyNegativeLossTermIsFlagged) {
  a::DomainEnv env = river::LintDomains();
  // B_Phy * C_UA - (0 - C_UA) * C_FS: the subtracted product is provably
  // strictly negative (C_UA in [0.1, 4], C_FS in [4, 6]).
  const e::ExprPtr eq = e::Sub(
      e::Mul(e::Variable(river::kBPhy, "B_Phy"),
             e::Parameter(river::kCUA, "C_UA")),
      e::Mul(e::Sub(e::Constant(0.0), e::Parameter(river::kCUA, "C_UA")),
             e::Parameter(river::kCFS, "C_FS")));
  const a::MassBalanceResult result = a::CheckMassBalance(*eq, env);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_STREQ(result.findings[0].code, "loss-term-adds-mass");
}

TEST(SignTest, ExpertRiverProcessIsMassBalanceClean) {
  const a::DomainEnv env = river::LintDomains();
  for (const e::ExprPtr& eq : river::ManualProcess()) {
    EXPECT_TRUE(a::CheckMassBalance(*eq, env).Consistent());
  }
}

// ---------------------------------------------------------- activity pass ----

TEST(ActivityTest, ExactIndependenceIsPruned) {
  a::DomainEnv env;
  env.variables = {a::Interval::Of(1.0, 2.0)};
  env.parameters = {a::Interval::Of(0.5, 1.5), a::Interval::Of(0.5, 1.5)};
  const e::ExprPtr x = e::Variable(0, "x");
  const e::ExprPtr p = e::Parameter(0, "p");
  // x - x is exactly zero over a finite range: no slot is active.
  EXPECT_EQ(a::AnalyzeActivity(*e::Sub(x, x), env), a::Activity{});
  // 0 * p is exactly zero while p stays finite.
  EXPECT_EQ(a::AnalyzeActivity(*e::Mul(e::Constant(0.0), p), env),
            a::Activity{});
  // A plain sum depends on both slots.
  const a::Activity both = a::AnalyzeActivity(*e::Add(x, p), env);
  EXPECT_EQ(both.variables, a::ActivityBit(0));
  EXPECT_EQ(both.parameters, a::ActivityBit(0));
  // Unbounded ranges disable the pruning guards (x - x could be inf - inf).
  env.variables[0] = a::Interval::All();
  EXPECT_EQ(a::AnalyzeActivity(*e::Sub(x, x), env).variables,
            a::ActivityBit(0));
}

TEST(ActivityTest, SlotsBeyondSixtyThreeShareTheStickyBit) {
  EXPECT_EQ(a::ActivityBit(63), a::ActivityBit(200));
  a::Activity activity;
  activity.parameters = a::ActivityBit(100);
  // The sticky bit is never reported inactive.
  const std::vector<int> inactive = a::InactiveParameters(activity, 70);
  for (const int slot : inactive) EXPECT_LT(slot, 63);
}

TEST(ActivityTest, OutputClosureExcludesUnreferencedEquations) {
  a::DomainEnv env;
  env.variables = {a::Interval::Of(0.0, 10.0), a::Interval::Of(0.0, 10.0)};
  env.parameters = {a::Interval::Of(0.1, 4.0), a::Interval::Of(0.0, 0.3)};
  // eq0 references only state 0; eq1's parameter can never reach output 0.
  const std::vector<e::ExprPtr> equations = {
      e::Mul(e::Variable(0, "B_Phy"), e::Parameter(0, "C_UA")),
      e::Mul(e::Variable(1, "B_Zoo"), e::Parameter(1, "C_UZ")),
  };
  const a::Activity closure = a::OutputClosureActivity(equations, 0, env);
  EXPECT_EQ(closure.variables, a::ActivityBit(0));
  EXPECT_EQ(closure.parameters, a::ActivityBit(0));
  const std::vector<int> inactive = a::InactiveParameters(closure, 2);
  ASSERT_EQ(inactive.size(), 1u);
  EXPECT_EQ(inactive[0], 1);
  // Coupling eq0 to state 1 pulls eq1 (and its parameter) into the closure.
  const std::vector<e::ExprPtr> coupled = {
      e::Mul(e::Variable(1, "B_Zoo"), e::Parameter(0, "C_UA")),
      e::Mul(e::Variable(1, "B_Zoo"), e::Parameter(1, "C_UZ")),
  };
  const a::Activity full = a::OutputClosureActivity(coupled, 0, env);
  EXPECT_EQ(full.parameters, a::ActivityBit(0) | a::ActivityBit(1));
  EXPECT_TRUE(a::InactiveParameters(full, 2).empty());
}

TEST(ActivityTest, ExpertRiverProcessHasNoInactiveLiveParameters) {
  // Parameters the expert process never mentions may legitimately be
  // inactive; what must not happen is a *live* parameter being reported.
  const a::Activity closure = a::OutputClosureActivity(
      river::ManualProcess(), river::kBPhy, river::LintDomains());
  const std::vector<int> inactive =
      a::InactiveParameters(closure, river::kNumParameters);
  const a::LintResult lint = a::LintEquations(
      river::ManualProcess(), river::LintDomains(), a::LintOptions{});
  for (const int slot : inactive) {
    for (const int live : lint.live_parameters) {
      EXPECT_NE(slot, live) << "live parameter reported inactive";
    }
  }
}

// ------------------------------------------------------ grammar dimensions ----

TEST(GrammarDimensionTest, BuiltinRiverGrammarPrunesNothing) {
  core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const a::GrammarDimensionResult result = a::AnalyzeGrammarDimensions(
      knowledge.grammar, river::RiverUnitsEnv());
  EXPECT_TRUE(result.inconsistent_betas.empty());
  EXPECT_TRUE(result.diagnostics.empty());
  // Pruning is therefore a no-op: search trajectories are unchanged.
  const std::size_t betas_before = knowledge.grammar.num_beta_trees();
  EXPECT_TRUE(a::PruneDimensionInconsistentBetas(&knowledge.grammar,
                                                 river::RiverUnitsEnv())
                  .empty());
  EXPECT_EQ(knowledge.grammar.num_beta_trees(), betas_before);
}

TEST(GrammarDimensionTest, InternallyMismatchedBetaIsFlaggedAndPruned) {
  std::istringstream spec(R"(# gmr-grammar v1
slot R 0.0 1.0
alpha seed Conc : B_Phy + V_n
beta grow Conc : FOOT * R
beta bad Conc : FOOT + (V_tmp + V_sd)
)");
  t::Grammar grammar;
  std::string error;
  ASSERT_TRUE(a::ParseGrammarSpec(spec, river::RiverSymbols(), &grammar,
                                  &error))
      << error;
  const a::UnitsEnv env = river::RiverUnitsEnv();
  const a::GrammarDimensionResult result =
      a::AnalyzeGrammarDimensions(grammar, env);
  // The alpha pins label Conc to M·L⁻³; 'bad' has an internal Θ + L
  // mismatch independent of its foot binding.
  ASSERT_EQ(result.inconsistent_betas.size(), 1u);
  EXPECT_EQ(grammar.beta(result.inconsistent_betas[0]).name(), "bad");
  const auto context = result.label_context.find("Conc");
  ASSERT_NE(context, result.label_context.end());
  EXPECT_EQ(context->second, a::Dim::Concentration());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].code, "dimension-inconsistent-beta");
  EXPECT_EQ(result.diagnostics[0].severity, a::Severity::kWarning);
  // Pruning removes 'bad' from the adjunction candidates while keeping the
  // tree registered (indices stay stable).
  const std::vector<int> pruned =
      a::PruneDimensionInconsistentBetas(&grammar, env);
  EXPECT_EQ(pruned, result.inconsistent_betas);
  EXPECT_EQ(grammar.num_beta_trees(), 2u);
  const std::vector<int> candidates = grammar.BetasWithRootLabel("Conc");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(grammar.beta(candidates[0]).name(), "grow");
}

// -------------------------------------------------- static gate rule wiring ----

TEST(StaticGateTest, GateRuleNamesAreStable) {
  EXPECT_STREQ(a::GateRuleName(a::GateRule::kNone), "none");
  EXPECT_STREQ(a::GateRuleName(a::GateRule::kIntervalNegInf),
               "interval_neg_inf");
  EXPECT_STREQ(a::GateRuleName(a::GateRule::kIntervalSaturation),
               "interval_saturation");
  EXPECT_STREQ(a::GateRuleName(a::GateRule::kUnitsMismatch),
               "units_mismatch");
  EXPECT_STREQ(a::GateRuleName(a::GateRule::kSignViolation),
               "sign_violation");
}

TEST(StaticGateTest, UnitsAndSignChecksAreOptIn) {
  a::StaticGateConfig config;
  config.enabled = true;
  config.domains = river::LintDomains();
  const std::vector<e::ExprPtr> dim_bad{
      e::Add(e::Variable(river::kVtmp, "V_tmp"),
             e::Variable(river::kVsd, "V_sd"))};
  const std::vector<e::ExprPtr> sign_bad{e::Sub(
      e::Mul(e::Variable(river::kBPhy, "B_Phy"),
             e::Parameter(river::kCUA, "C_UA")),
      e::Mul(e::Sub(e::Constant(0.0), e::Parameter(river::kCUA, "C_UA")),
             e::Parameter(river::kCFS, "C_FS")))};
  // Default config: neither check runs, neither candidate is rejected.
  EXPECT_FALSE(a::AnalyzeCandidate(dim_bad, config).reject);
  EXPECT_FALSE(a::AnalyzeCandidate(sign_bad, config).reject);
  // Opt in.
  config.check_units = true;
  config.units = river::RiverUnitsEnv();
  config.check_sign = true;
  {
    const a::StaticVerdict verdict = a::AnalyzeCandidate(dim_bad, config);
    EXPECT_TRUE(verdict.reject);
    EXPECT_EQ(verdict.rule, a::GateRule::kUnitsMismatch);
    EXPECT_EQ(verdict.equation, 0);
  }
  {
    const a::StaticVerdict verdict = a::AnalyzeCandidate(sign_bad, config);
    EXPECT_TRUE(verdict.reject);
    EXPECT_EQ(verdict.rule, a::GateRule::kSignViolation);
  }
  // The expert process passes with both checks on.
  EXPECT_FALSE(a::AnalyzeCandidate(river::ManualProcess(), config).reject);
}

TEST(EvaluatorGateTest, RuleCountersAndVerdictCacheStats) {
  GateFixture fx;
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&fx.dataset, sim);
  gp::SpeedupConfig config;
  config.static_gate = river::MakeStaticGate(sim, &fx.dataset);
  gp::FitnessEvaluator evaluator(&fx.knowledge.grammar, &fitness, config);

  gp::Individual first = fx.MakeDivergent(3);
  gp::Individual second = fx.MakeDivergent(4);
  evaluator.Evaluate(&first);
  evaluator.Evaluate(&second);
  const gp::EvalStats& stats = evaluator.stats();
  EXPECT_EQ(stats.verdict_cache_lookups, 2u);
  EXPECT_EQ(stats.verdict_cache_hits, 1u);
  // Both rejects were interval-saturation rejects of the same structure.
  EXPECT_EQ(stats.gate_rule_rejects[static_cast<std::size_t>(
                a::GateRule::kIntervalSaturation)],
            2u);
  EXPECT_EQ(stats.gate_rule_rejects[static_cast<std::size_t>(
                a::GateRule::kIntervalNegInf)],
            0u);
}

TEST(EvalStatsTest, MergeAddsVerdictCacheAndRuleCounters) {
  gp::EvalStats stats;
  stats.verdict_cache_lookups = 3;
  stats.verdict_cache_hits = 1;
  stats.gate_rule_rejects[1] = 2;
  gp::EvalStats other;
  other.verdict_cache_lookups = 4;
  other.verdict_cache_hits = 2;
  other.gate_rule_rejects[1] = 5;
  stats.Merge(other);
  EXPECT_EQ(stats.verdict_cache_lookups, 7u);
  EXPECT_EQ(stats.verdict_cache_hits, 3u);
  EXPECT_EQ(stats.gate_rule_rejects[1], 7u);
}

}  // namespace
}  // namespace gmr
