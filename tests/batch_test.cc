// Batched-evaluation tests: the stride-N batch VM, the generation-batched
// JIT session (structure-hash compile cache, one TU per batch), SoA batch
// rollouts with per-lane watchdog masking, and the `batch_compile` fault
// site. Labeled `batch`, `prop`, and `fault` in ctest.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/status.h"
#include "expr/ast.h"
#include "expr/batch_jit.h"
#include "expr/batch_vm.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "core/gmr.h"
#include "core/river_grammar.h"
#include "obs/run_context.h"
#include "obs/telemetry.h"
#include "river/dataset.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"

namespace gmr {
namespace {

namespace e = gmr::expr;
using river::BatchSimulateBPhy;
using river::CompiledBackend;
using river::IntegrationMethod;
using river::RiverDataset;
using river::SimulateBPhy;
using river::SimulationConfig;
using river::SimulationReport;

/// Arms a fault spec for the scope of one test and guarantees cleanup.
struct ScopedFault {
  explicit ScopedFault(const std::string& spec) {
    std::string error;
    armed = SetFaultSpec(spec, &error);
    EXPECT_TRUE(armed) << error;
  }
  ~ScopedFault() { ClearFaults(); }
  bool armed = false;
};

bool BitwiseEqual(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// A nontrivial expression over two variables and two parameters that
/// exercises every protected kernel.
e::ExprPtr TestExpr() {
  return e::Add(
      e::Mul(e::Parameter(0, "p0"), e::Variable(0, "x")),
      e::Div(e::Log(e::Exp(e::Variable(1, "y"))),
             e::Max(e::Parameter(1, "p1"), e::Constant(0.25))));
}

// --------------------------------------------------------- batch VM ------

TEST(BatchVmTest, MatchesInterpreterLaneByLane) {
  const e::ExprPtr tree = TestExpr();
  const e::BatchProgram program = e::CompileBatch(*tree);
  const std::size_t width = 16;
  Rng rng(7);
  std::vector<double> vars(2 * width);
  std::vector<double> params(2 * width);
  for (double& v : vars) v = rng.Uniform(-3.0, 3.0);
  for (double& p : params) p = rng.Uniform(-2.0, 2.0);

  e::BatchEvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = 2;
  ctx.parameters = params.data();
  ctx.num_parameters = 2;
  ctx.width = width;
  std::vector<double> out(width, 0.0);
  program.RunLanes(ctx, out.data());

  for (std::size_t lane = 0; lane < width; ++lane) {
    const double lane_vars[2] = {vars[0 * width + lane],
                                 vars[1 * width + lane]};
    const double lane_params[2] = {params[0 * width + lane],
                                   params[1 * width + lane]};
    e::EvalContext ec;
    ec.variables = lane_vars;
    ec.num_variables = 2;
    ec.parameters = lane_params;
    ec.num_parameters = 2;
    EXPECT_TRUE(BitwiseEqual(out[lane], e::EvalExpr(*tree, ec)))
        << "lane " << lane;
  }
}

TEST(BatchVmTest, WidthOneMatchesBytecodeVmBitwise) {
  const e::ExprPtr tree = TestExpr();
  const e::CompiledProgram scalar = e::Compile(*tree);
  const e::BatchProgram batch = e::CompileBatch(*tree);
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const double vars[2] = {rng.Uniform(-5.0, 5.0),
                            rng.Uniform(-5.0, 5.0)};
    const double params[2] = {rng.Uniform(-5.0, 5.0),
                              rng.Uniform(-5.0, 5.0)};
    e::EvalContext ec;
    ec.variables = vars;
    ec.num_variables = 2;
    ec.parameters = params;
    ec.num_parameters = 2;
    e::BatchEvalContext bc;
    bc.variables = vars;
    bc.num_variables = 2;
    bc.parameters = params;
    bc.num_parameters = 2;
    bc.width = 1;
    double got = 0.0;
    batch.RunLanes(bc, &got);
    EXPECT_TRUE(BitwiseEqual(got, scalar.Run(ec))) << "trial " << trial;
  }
}

TEST(BatchVmTest, LaneDivergenceDoesNotPerturbNeighbors) {
  // gmr_plog(0) = 0 and division guards keep most lanes finite; inject a
  // non-finite value into one lane's variable slot and check neighbors.
  const e::ExprPtr tree =
      e::Add(e::Variable(0, "x"), e::Mul(e::Variable(0, "x"),
                                         e::Parameter(0, "p0")));
  const e::BatchProgram program = e::CompileBatch(*tree);
  const std::size_t width = 8;
  std::vector<double> vars(width, 1.0);
  std::vector<double> params(width, 2.0);
  vars[3] = std::numeric_limits<double>::quiet_NaN();
  e::BatchEvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = 1;
  ctx.parameters = params.data();
  ctx.num_parameters = 1;
  ctx.width = width;
  std::vector<double> out(width, 0.0);
  program.RunLanes(ctx, out.data());
  for (std::size_t lane = 0; lane < width; ++lane) {
    if (lane == 3) {
      EXPECT_TRUE(std::isnan(out[lane]));
    } else {
      EXPECT_DOUBLE_EQ(out[lane], 3.0) << "lane " << lane;
    }
  }
}

// -------------------------------------------------- batch JIT session ----

TEST(BatchJitTest, SymbolNameIsHashKeyed) {
  EXPECT_EQ(e::BatchSymbolName(0x1234abcdULL), "gmr_b_000000001234abcd");
}

TEST(BatchJitTest, GeneratedSourceHasOneSymbolPerUniqueTree) {
  const e::ExprPtr a = TestExpr();
  const e::ExprPtr b = e::Mul(e::Variable(0, "x"), e::Constant(2.0));
  const std::string source = e::GenerateBatchCSource(
      {{a->StructuralHash(), a.get()}, {b->StructuralHash(), b.get()}});
  EXPECT_NE(source.find(e::BatchSymbolName(a->StructuralHash())),
            std::string::npos);
  EXPECT_NE(source.find(e::BatchSymbolName(b->StructuralHash())),
            std::string::npos);
  // Strided SoA addressing: leaves index [slot * w + i].
  EXPECT_NE(source.find("*w+i]"), std::string::npos);
}

TEST(BatchJitTest, DeduplicatesWithinAndAcrossBatches) {
  if (!e::JitAvailable()) GTEST_SKIP() << "no C compiler";
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  const e::ExprPtr a = TestExpr();
  const e::ExprPtr a_clone = TestExpr();  // same structure, distinct nodes
  const e::ExprPtr b = e::Mul(e::Variable(0, "x"), e::Parameter(0, "p0"));

  const auto fns =
      session.CompileBatch({a.get(), b.get(), a_clone.get()});
  ASSERT_EQ(fns.size(), 3u);
  ASSERT_NE(fns[0], nullptr);
  ASSERT_NE(fns[1], nullptr);
  // Structure-hash dedup: the clone resolves to the same symbol.
  EXPECT_EQ(fns[0], fns[2]);

  e::BatchJitSession::Stats stats = session.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.unique_misses, 2u);
  EXPECT_EQ(stats.tu_compiles, 1u);  // ONE compiler invocation for both
  EXPECT_EQ(stats.symbols_compiled, 2u);
  EXPECT_EQ(session.cache_size(), 2u);

  // A second batch over the same structures never recompiles.
  const auto again = session.CompileBatch({a.get(), b.get()});
  EXPECT_EQ(again[0], fns[0]);
  EXPECT_EQ(again[1], fns[1]);
  stats = session.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.tu_compiles, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 2.0 / 5.0);

  // The compiled symbol agrees with the interpreter at full width.
  const std::size_t width = 4;
  std::vector<double> vars(2 * width);
  std::vector<double> params(2 * width);
  Rng rng(3);
  for (double& v : vars) v = rng.Uniform(-2.0, 2.0);
  for (double& p : params) p = rng.Uniform(-2.0, 2.0);
  std::vector<double> out(width, 0.0);
  fns[0](vars.data(), params.data(), out.data(), static_cast<long>(width));
  for (std::size_t lane = 0; lane < width; ++lane) {
    const double lane_vars[2] = {vars[lane], vars[width + lane]};
    const double lane_params[2] = {params[lane], params[width + lane]};
    e::EvalContext ec;
    ec.variables = lane_vars;
    ec.num_variables = 2;
    ec.parameters = lane_params;
    ec.num_parameters = 2;
    EXPECT_NEAR(out[lane], e::EvalExpr(*a, ec), 1e-12) << "lane " << lane;
  }
}

// ------------------------------------------------------ batch rollouts ----

RiverDataset TinyDataset(std::size_t days) {
  RiverDataset dataset;
  dataset.num_days = days;
  dataset.drivers.assign(river::kNumVariables, {});
  for (int slot : river::ObservedVariableSlots()) {
    dataset.drivers[static_cast<std::size_t>(slot)] =
        std::vector<double>(days, 1.0);
  }
  dataset.observed_bphy = std::vector<double>(days, 5.0);
  dataset.train_end = days / 2;
  dataset.initial_bphy = 5.0;
  dataset.initial_bzoo = 1.0;
  dataset.test_initial_bphy = 5.0;
  dataset.test_initial_bzoo = 1.0;
  return dataset;
}

/// Equations whose dynamics depend on the parameter vector, so distinct
/// lanes trace distinct trajectories: dB_Phy/dt = p0 B_Phy - p1 B_Zoo,
/// dB_Zoo/dt = p2 B_Phy.
std::vector<e::ExprPtr> ParameterizedEquations() {
  std::vector<e::ExprPtr> equations;
  equations.push_back(
      e::Sub(e::Mul(e::Parameter(0, "p0"), e::Variable(river::kBPhy, "B")),
             e::Mul(e::Parameter(1, "p1"), e::Variable(river::kBZoo, "Z"))));
  equations.push_back(
      e::Mul(e::Parameter(2, "p2"), e::Variable(river::kBPhy, "B")));
  return equations;
}

/// Lanes 0..n-2 are tame; the last lane diverges explosively (hits the
/// state_max clamp and, with a tight saturation watchdog, aborts).
std::vector<std::vector<double>> MixedLanes(std::size_t n) {
  std::vector<std::vector<double>> lanes;
  for (std::size_t l = 0; l + 1 < n; ++l) {
    std::vector<double> p(river::kNumParameters, 0.0);
    p[0] = 0.01 * static_cast<double>(l + 1);
    p[1] = 0.005;
    p[2] = 0.002 * static_cast<double>(l + 1);
    lanes.push_back(std::move(p));
  }
  std::vector<double> divergent(river::kNumParameters, 0.0);
  divergent[0] = 50.0;  // explosive growth; saturates the clamp fast
  lanes.push_back(std::move(divergent));
  return lanes;
}

void ExpectLaneMatchesScalar(const std::vector<e::ExprPtr>& equations,
                             const std::vector<std::vector<double>>& lanes,
                             const SimulationConfig& config,
                             std::size_t days) {
  const RiverDataset dataset = TinyDataset(days);
  const auto batch = BatchSimulateBPhy(equations, lanes, dataset, 0, days,
                                       5.0, 1.0, config);
  ASSERT_EQ(batch.width, lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    SimulationReport scalar_report;
    const auto scalar = SimulateBPhy(equations, lanes[l], dataset, 0, days,
                                     5.0, 1.0, config, /*compiled=*/true,
                                     &scalar_report);
    ASSERT_EQ(batch.predicted[l].size(), scalar.size()) << "lane " << l;
    for (std::size_t t = 0; t < scalar.size(); ++t) {
      EXPECT_TRUE(BitwiseEqual(batch.predicted[l][t], scalar[t]))
          << "lane " << l << " day " << t << ": batch "
          << batch.predicted[l][t] << " vs scalar " << scalar[t];
    }
    const SimulationReport& r = batch.reports[l];
    EXPECT_EQ(r.outcome, scalar_report.outcome) << "lane " << l;
    EXPECT_EQ(r.aborted, scalar_report.aborted) << "lane " << l;
    EXPECT_EQ(r.substeps_used, scalar_report.substeps_used) << "lane " << l;
    EXPECT_EQ(r.days_simulated, scalar_report.days_simulated);
    EXPECT_EQ(r.days_before_abort, scalar_report.days_before_abort);
    EXPECT_EQ(r.nonfinite_derivatives, scalar_report.nonfinite_derivatives);
    EXPECT_EQ(r.clamp_saturations, scalar_report.clamp_saturations);
  }
}

TEST(BatchRolloutTest, EulerMatchesScalarLaneByLaneBitwise) {
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchVm;
  config.max_saturated_substeps = 8;  // the divergent lane must abort
  ExpectLaneMatchesScalar(ParameterizedEquations(), MixedLanes(8), config,
                          40);
}

TEST(BatchRolloutTest, Rk4MatchesScalarLaneByLaneBitwise) {
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchVm;
  config.method = IntegrationMethod::kRk4;
  config.max_saturated_substeps = 8;
  ExpectLaneMatchesScalar(ParameterizedEquations(), MixedLanes(6), config,
                          30);
}

TEST(BatchRolloutTest, SubstepBudgetAbortsPerLane) {
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchVm;
  config.substep_budget = 20;  // 2 substeps/day -> aborts on day 11
  ExpectLaneMatchesScalar(ParameterizedEquations(), MixedLanes(4), config,
                          30);
}

TEST(BatchRolloutTest, MaskedLaneIsIsolated) {
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchVm;
  config.max_saturated_substeps = 8;
  const std::size_t days = 40;
  const RiverDataset dataset = TinyDataset(days);
  const auto lanes = MixedLanes(8);
  const auto batch = BatchSimulateBPhy(ParameterizedEquations(), lanes,
                                       dataset, 0, days, 5.0, 1.0, config);
  // The divergent lane aborted with the saturation watchdog...
  const SimulationReport& divergent = batch.reports.back();
  EXPECT_TRUE(divergent.aborted);
  EXPECT_EQ(divergent.outcome, EvalOutcome::kClampSaturated);
  EXPECT_LT(divergent.days_before_abort, days);
  for (std::size_t t = divergent.days_before_abort; t < days; ++t) {
    EXPECT_DOUBLE_EQ(batch.predicted.back()[t], config.state_max);
  }
  // ...and every healthy lane ran to completion, unperturbed.
  for (std::size_t l = 0; l + 1 < batch.width; ++l) {
    EXPECT_FALSE(batch.reports[l].aborted) << "lane " << l;
    EXPECT_EQ(batch.reports[l].outcome, EvalOutcome::kOk) << "lane " << l;
    EXPECT_EQ(batch.reports[l].days_simulated, days);
  }
}

TEST(BatchRolloutTest, BatchJitLanesMatchVmLanes) {
  if (!e::JitAvailable()) GTEST_SKIP() << "no C compiler";
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  SimulationConfig vm_config;
  vm_config.compiled_backend = CompiledBackend::kBatchVm;
  SimulationConfig jit_config = vm_config;
  jit_config.compiled_backend = CompiledBackend::kBatchJit;
  jit_config.batch_jit_session = &session;
  const std::size_t days = 30;
  const RiverDataset dataset = TinyDataset(days);
  const auto equations = ParameterizedEquations();
  const auto lanes = MixedLanes(4);
  const auto vm = BatchSimulateBPhy(equations, lanes, dataset, 0, days, 5.0,
                                    1.0, vm_config);
  const auto jit = BatchSimulateBPhy(equations, lanes, dataset, 0, days, 5.0,
                                     1.0, jit_config);
  EXPECT_GE(session.stats().tu_compiles, 1u);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    EXPECT_FALSE(jit.reports[l].jit_fallback);
    for (std::size_t t = 0; t < days; ++t) {
      // The batch JIT has the per-model JIT's ULP budget against the VM;
      // on this toolchain (-ffp-contract=off) they match to full precision.
      EXPECT_NEAR(jit.predicted[l][t], vm.predicted[l][t],
                  1e-9 * std::abs(vm.predicted[l][t]) + 1e-12)
          << "lane " << l << " day " << t;
    }
  }
}

// ------------------------------------------------- batch_compile fault ----

TEST(BatchFaultTest, BatchCompilePointRoundTrips) {
  EXPECT_STREQ(FaultPointName(FaultPoint::kBatchCompile), "batch_compile");
  std::string error;
  EXPECT_TRUE(SetFaultSpec("batch_compile:always", &error)) << error;
  EXPECT_TRUE(FaultInjected(FaultPoint::kBatchCompile));
  ClearFaults();
}

TEST(BatchFaultTest, CompileFaultFallsBackToVmWithoutPoisoningLanes) {
  ScopedFault fault("batch_compile:always");
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  SimulationConfig jit_config;
  jit_config.compiled_backend = CompiledBackend::kBatchJit;
  jit_config.batch_jit_session = &session;
  jit_config.max_saturated_substeps = 8;
  SimulationConfig vm_config = jit_config;
  vm_config.compiled_backend = CompiledBackend::kBatchVm;

  const std::size_t days = 30;
  const RiverDataset dataset = TinyDataset(days);
  const auto equations = ParameterizedEquations();
  const auto lanes = MixedLanes(4);
  const auto faulty = BatchSimulateBPhy(equations, lanes, dataset, 0, days,
                                        5.0, 1.0, jit_config);
  const auto vm = BatchSimulateBPhy(equations, lanes, dataset, 0, days, 5.0,
                                    1.0, vm_config);
  EXPECT_EQ(session.stats().tu_compiles, 0u);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    // The degradation is reported, exact, and per-lane bitwise identical
    // to the batched VM: healthy lanes are never poisoned.
    EXPECT_TRUE(faulty.reports[l].jit_fallback) << "lane " << l;
    for (std::size_t t = 0; t < days; ++t) {
      EXPECT_TRUE(
          BitwiseEqual(faulty.predicted[l][t], vm.predicted[l][t]))
          << "lane " << l << " day " << t;
    }
  }
  // The healthy lanes report the fallback (exactness preserved), the
  // divergent lane still reports its own abort.
  EXPECT_EQ(faulty.reports.front().outcome, EvalOutcome::kJitCompileFailed);
  EXPECT_EQ(faulty.reports.back().outcome, EvalOutcome::kClampSaturated);
}

TEST(BatchFaultTest, RepeatedCompileFaultsOpenTheBreaker) {
  ScopedFault fault("batch_compile:always");
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  const e::ExprPtr a = TestExpr();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allowed());
    const auto fns = session.CompileBatch({a.get()});
    EXPECT_EQ(fns[0], nullptr);
  }
  EXPECT_FALSE(breaker.allowed());
  EXPECT_EQ(session.stats().compile_failures, 3u);
  // With the breaker open the fault site is no longer even consulted.
  EXPECT_EQ(session.stats().tu_compiles, 0u);
}

TEST(BatchFaultTest, OnceFaultRecoversOnNextBatch) {
  if (!e::JitAvailable()) GTEST_SKIP() << "no C compiler";
  ScopedFault fault("batch_compile:once");
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  const e::ExprPtr a = TestExpr();
  EXPECT_EQ(session.CompileBatch({a.get()})[0], nullptr);
  EXPECT_NE(session.CompileBatch({a.get()})[0], nullptr);
  EXPECT_TRUE(breaker.allowed());
}

// --------------------------------------------- fitness-level equivalence --

TEST(BatchFitnessTest, BatchVmFitnessMatchesBytecodeBitwise) {
  const RiverDataset dataset = TinyDataset(40);
  SimulationConfig vm_config;
  vm_config.compiled_backend = CompiledBackend::kBytecodeVm;
  SimulationConfig batch_config;
  batch_config.compiled_backend = CompiledBackend::kBatchVm;
  const river::RiverFitness vm_fitness =
      river::RiverFitness::ForTraining(&dataset, vm_config);
  const river::RiverFitness batch_fitness =
      river::RiverFitness::ForTraining(&dataset, batch_config);
  const auto equations = ParameterizedEquations();
  for (const auto& params : MixedLanes(4)) {
    auto a = vm_fitness.Begin(equations, params, true);
    auto b = batch_fitness.Begin(equations, params, true);
    bool more = true;
    while (more) {
      const bool more_a = a->Step();
      const bool more_b = b->Step();
      EXPECT_EQ(more_a, more_b);
      more = more_a && more_b;
    }
    EXPECT_TRUE(BitwiseEqual(a->CurrentFitness(), b->CurrentFitness()));
    EXPECT_EQ(a->outcome(), b->outcome());
  }
}

TEST(BatchFitnessTest, PrepareBatchPrecompilesTheGeneration) {
  if (!e::JitAvailable()) GTEST_SKIP() << "no C compiler";
  const RiverDataset dataset = TinyDataset(20);
  e::JitCircuitBreaker breaker;
  e::BatchJitSession session(&breaker);
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchJit;
  config.batch_jit_session = &session;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset, config);
  EXPECT_TRUE(fitness.WantsBatchPreparation());

  // A "generation" of three phenotypes, two of them structurally equal:
  // one PrepareBatch -> one TU, 4 unique symbols.
  std::vector<std::vector<e::ExprPtr>> phenotypes;
  phenotypes.push_back(ParameterizedEquations());
  phenotypes.push_back(ParameterizedEquations());
  std::vector<e::ExprPtr> other;
  other.push_back(e::Mul(e::Constant(0.5), e::Variable(river::kBPhy, "B")));
  other.push_back(e::Neg(e::Variable(river::kBZoo, "Z")));
  phenotypes.push_back(std::move(other));
  fitness.PrepareBatch(phenotypes);
  const auto after_prepare = session.stats();
  EXPECT_EQ(after_prepare.tu_compiles, 1u);
  EXPECT_EQ(after_prepare.symbols_compiled, 4u);

  // Per-individual Begin() calls are then pure cache hits: no new TU.
  const std::vector<double> params(river::kNumParameters, 0.01);
  for (const auto& phenotype : phenotypes) {
    auto eval = fitness.Begin(phenotype, params, true);
    while (eval->Step()) {
    }
    EXPECT_EQ(eval->outcome(), EvalOutcome::kOk);
  }
  const auto after_eval = session.stats();
  EXPECT_EQ(after_eval.tu_compiles, 1u);
  EXPECT_GT(after_eval.hits, after_prepare.hits);
}

// End to end: a short GMR search on the kBatchJit backend completes,
// is deterministic for its seed, and reports the compile-cache
// effectiveness as a `batch_jit_cache` trace event.
TEST(BatchFitnessTest, RunGmrOnBatchJitEmitsCacheEvent) {
  river::SyntheticConfig synth;
  synth.years = 2;
  synth.train_years = 1;
  synth.seed = 3;
  const RiverDataset dataset = river::GenerateNakdongLike(synth);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();

  core::GmrConfig config;
  config.tag3p.population_size = 8;
  config.tag3p.max_generations = 2;
  config.tag3p.local_search_steps = 1;
  config.tag3p.seed = 7;
  config.simulation.compiled_backend = CompiledBackend::kBatchJit;
  expr::JitCircuitBreaker breaker;
  expr::BatchJitSession session(&breaker);
  config.simulation.jit_breaker = &breaker;
  config.simulation.batch_jit_session = &session;

  double first_fitness = 0.0;
  {
    obs::VectorSink sink;
    obs::RunContext context;
    context.sink = &sink;
    const core::GmrRunResult result = core::RunGmr(
        config, core::GmrProblem{&dataset, &knowledge}, context);
    EXPECT_TRUE(std::isfinite(result.best.fitness));
    first_fitness = result.best.fitness;
    bool saw_cache_event = false;
    for (const obs::TraceEvent& event : sink.events()) {
      if (event.type == "batch_jit_cache") saw_cache_event = true;
    }
    EXPECT_TRUE(saw_cache_event);
  }
  EXPECT_GT(session.stats().requests, 0u);
  if (e::JitAvailable()) {
    EXPECT_GT(session.stats().tu_compiles, 0u);
  }

  // Same seed, same session (now fully warm): bit-identical result.
  const core::GmrRunResult again = core::RunGmr(dataset, knowledge, config);
  EXPECT_TRUE(BitwiseEqual(again.best.fitness, first_fitness));
}

}  // namespace
}  // namespace gmr
