#include <gtest/gtest.h>

#include <fstream>

#include "core/gmr.h"
#include "core/model_io.h"
#include "core/revision_report.h"
#include "core/river_grammar.h"
#include "expr/print.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/synthetic.h"
#include "tag/generate.h"

namespace gmr::core {
namespace {

namespace e = gmr::expr;
namespace r = gmr::river;

std::vector<std::string> RiverParameterNames() {
  std::vector<std::string> names;
  for (int slot = 0; slot < r::kNumParameters; ++slot) {
    names.push_back(r::ParameterName(slot));
  }
  return names;
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesSemantics) {
  SavedModel model;
  model.equations = r::ManualProcess();
  model.parameters = gp::PriorMeans(r::RiverParameterPriors());
  model.parameters[r::kCUA] = 1.2345678901234567;

  const std::string path = ::testing::TempDir() + "/gmr_model_test.txt";
  ASSERT_TRUE(SaveModel(path, model, RiverParameterNames()));

  SavedModel loaded;
  std::string error;
  ASSERT_TRUE(LoadModel(path, r::RiverSymbols(), &loaded, &error)) << error;
  ASSERT_EQ(loaded.equations.size(), model.equations.size());
  ASSERT_EQ(loaded.parameters.size(), model.parameters.size());
  for (std::size_t i = 0; i < model.parameters.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.parameters[i], model.parameters[i]);
  }

  // Semantic equivalence: identical accuracy on a dataset.
  river::SyntheticConfig config;
  config.years = 2;
  config.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(config);
  const auto a = EvaluateAccuracy(model.equations, model.parameters, dataset,
                                  river::SimulationConfig{});
  const auto b = EvaluateAccuracy(loaded.equations, loaded.parameters,
                                  dataset, river::SimulationConfig{});
  EXPECT_DOUBLE_EQ(a.train_rmse, b.train_rmse);
  EXPECT_DOUBLE_EQ(a.test_rmse, b.test_rmse);
}

TEST(ModelIoTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/gmr_model_bad.txt";
  {
    std::ofstream out(path);
    out << "equation x +\n";
  }
  SavedModel model;
  std::string error;
  EXPECT_FALSE(LoadModel(path, r::RiverSymbols(), &model, &error));
  EXPECT_FALSE(LoadModel("/nonexistent/nope", r::RiverSymbols(), &model,
                         &error));
}

TEST(ModelIoTest, LoadRejectsUnknownParameter) {
  const std::string path = ::testing::TempDir() + "/gmr_model_badparam.txt";
  {
    std::ofstream out(path);
    out << "# gmr-model v1\nequation B_Phy\nparam C_Bogus = 1\n";
  }
  SavedModel model;
  std::string error;
  EXPECT_FALSE(LoadModel(path, r::RiverSymbols(), &model, &error));
  EXPECT_NE(error.find("C_Bogus"), std::string::npos);
}

TEST(RevisionReportTest, NamesAdjunctionSitesAndBetas) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  Rng rng(5);
  tag::DerivationPtr genotype = tag::GrowRandom(
      knowledge.grammar, knowledge.seed_alpha_index, 6, rng);
  const RevisionSummary summary =
      SummarizeRevisions(knowledge.grammar, *genotype);
  EXPECT_EQ(summary.num_revisions(), genotype->NodeCount() - 1);
  for (const RevisionEntry& entry : summary.entries) {
    // Every site is an extension-point symbol; every beta has a name.
    EXPECT_TRUE(entry.site_label.rfind("ExtC", 0) == 0 ||
                entry.site_label.rfind("ExtE", 0) == 0)
        << entry.site_label;
    EXPECT_FALSE(entry.beta_name.empty());
  }
  const std::string text = summary.ToString();
  if (summary.num_revisions() > 0) {
    EXPECT_NE(text.find("<-"), std::string::npos);
  }
}

TEST(RevisionReportTest, SeedAloneHasNoRevisions) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  tag::DerivationNode seed;
  seed.tree_index = knowledge.seed_alpha_index;
  const RevisionSummary summary =
      SummarizeRevisions(knowledge.grammar, seed);
  EXPECT_EQ(summary.num_revisions(), 0u);
  EXPECT_TRUE(summary.ToString().empty());
}

}  // namespace
}  // namespace gmr::core
