#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "expr/ast.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "expr/print.h"
#include "expr/simplify.h"

namespace gmr::expr {
namespace {

/// Owns the backing storage so the EvalContext pointers stay valid for the
/// holder's lifetime (EvalContext itself is non-owning).
class ContextHolder {
 public:
  ContextHolder(std::vector<double> vars, std::vector<double> params)
      : vars_(std::move(vars)), params_(std::move(params)) {}

  operator EvalContext() const {  // NOLINT: test convenience
    EvalContext ctx;
    ctx.variables = vars_.data();
    ctx.num_variables = vars_.size();
    ctx.parameters = params_.data();
    ctx.num_parameters = params_.size();
    return ctx;
  }

 private:
  std::vector<double> vars_;
  std::vector<double> params_;
};

ContextHolder MakeContext(std::vector<double> vars,
                          std::vector<double> params) {
  return ContextHolder(std::move(vars), std::move(params));
}

// ----------------------------------------------------------------- AST ----

TEST(AstTest, NodeCountAndHeight) {
  const ExprPtr e = Add(Mul(Variable(0, "x"), Constant(2.0)), Constant(1.0));
  EXPECT_EQ(e->NodeCount(), 5u);
  EXPECT_EQ(e->Height(), 3u);
  EXPECT_EQ(Constant(1.0)->Height(), 1u);
}

TEST(AstTest, ArityTable) {
  EXPECT_EQ(Arity(NodeKind::kConstant), 0);
  EXPECT_EQ(Arity(NodeKind::kVariable), 0);
  EXPECT_EQ(Arity(NodeKind::kParameter), 0);
  EXPECT_EQ(Arity(NodeKind::kNeg), 1);
  EXPECT_EQ(Arity(NodeKind::kLog), 1);
  EXPECT_EQ(Arity(NodeKind::kExp), 1);
  for (NodeKind k : {NodeKind::kAdd, NodeKind::kSub, NodeKind::kMul,
                     NodeKind::kDiv, NodeKind::kMin, NodeKind::kMax}) {
    EXPECT_EQ(Arity(k), 2);
  }
}

TEST(AstTest, StructuralEqualityAndHash) {
  const ExprPtr a = Add(Variable(0, "x"), Constant(1.0));
  const ExprPtr b = Add(Variable(0, "x"), Constant(1.0));
  const ExprPtr c = Add(Variable(1, "y"), Constant(1.0));
  EXPECT_TRUE(StructurallyEqual(*a, *b));
  EXPECT_FALSE(StructurallyEqual(*a, *c));
  EXPECT_EQ(a->StructuralHash(), b->StructuralHash());
  EXPECT_NE(a->StructuralHash(), c->StructuralHash());
}

TEST(AstTest, HashDistinguishesOperandOrderForNoncommutative) {
  const ExprPtr a = Sub(Variable(0, "x"), Constant(1.0));
  const ExprPtr b = Sub(Constant(1.0), Variable(0, "x"));
  EXPECT_NE(a->StructuralHash(), b->StructuralHash());
}

TEST(AstTest, ReferencedSlots) {
  const ExprPtr e =
      Add(Mul(Variable(3, "a"), Parameter(1, "p")),
          Sub(Variable(0, "b"), Variable(3, "a")));
  EXPECT_EQ(ReferencedVariableSlots(*e), (std::vector<int>{0, 3}));
  EXPECT_EQ(ReferencedParameterSlots(*e), (std::vector<int>{1}));
}

// ---------------------------------------------------------------- eval ----

TEST(EvalTest, BasicArithmetic) {
  const auto ctx = MakeContext({3.0, 4.0}, {});
  EXPECT_DOUBLE_EQ(EvalExpr(*Add(Variable(0, ""), Variable(1, "")), ctx), 7);
  EXPECT_DOUBLE_EQ(EvalExpr(*Sub(Variable(0, ""), Variable(1, "")), ctx), -1);
  EXPECT_DOUBLE_EQ(EvalExpr(*Mul(Variable(0, ""), Variable(1, "")), ctx), 12);
  EXPECT_DOUBLE_EQ(EvalExpr(*Div(Variable(1, ""), Variable(0, "")), ctx),
                   4.0 / 3.0);
  EXPECT_DOUBLE_EQ(EvalExpr(*Min(Variable(0, ""), Variable(1, "")), ctx), 3);
  EXPECT_DOUBLE_EQ(EvalExpr(*Max(Variable(0, ""), Variable(1, "")), ctx), 4);
  EXPECT_DOUBLE_EQ(EvalExpr(*Neg(Variable(0, "")), ctx), -3);
}

TEST(EvalTest, ParameterLookup) {
  const auto ctx = MakeContext({}, {2.5, -1.0});
  EXPECT_DOUBLE_EQ(EvalExpr(*Parameter(1, "p"), ctx), -1.0);
}

TEST(EvalTest, ProtectedDivisionReturnsOne) {
  const auto ctx = MakeContext({5.0, 0.0}, {});
  EXPECT_DOUBLE_EQ(EvalExpr(*Div(Variable(0, ""), Variable(1, "")), ctx),
                   1.0);
  EXPECT_DOUBLE_EQ(
      EvalExpr(*Div(Variable(0, ""), Constant(0.5 * kDivEpsilon)), ctx), 1.0);
}

TEST(EvalTest, ProtectedLog) {
  const auto ctx = MakeContext({}, {});
  EXPECT_DOUBLE_EQ(EvalExpr(*Log(Constant(std::exp(1.0))), ctx), 1.0);
  EXPECT_DOUBLE_EQ(EvalExpr(*Log(Constant(-std::exp(2.0))), ctx), 2.0);
  EXPECT_DOUBLE_EQ(EvalExpr(*Log(Constant(0.0)), ctx), 0.0);
}

TEST(EvalTest, ExpIsClamped) {
  const auto ctx = MakeContext({}, {});
  const double big = EvalExpr(*Exp(Constant(1e9)), ctx);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_DOUBLE_EQ(big, std::exp(kExpArgClamp));
  EXPECT_DOUBLE_EQ(EvalExpr(*Exp(Constant(-1e9)), ctx),
                   std::exp(-kExpArgClamp));
}

// ------------------------------------------------------------- compile ----

ExprPtr RandomTree(Rng& rng, int depth, int num_vars, int num_params) {
  if (depth <= 1 || rng.Bernoulli(0.3)) {
    const double dice = rng.Uniform();
    if (dice < 0.4) return Variable(rng.UniformInt(0, num_vars - 1), "");
    if (dice < 0.6) return Parameter(rng.UniformInt(0, num_params - 1), "");
    return Constant(rng.Uniform(-5, 5));
  }
  static const NodeKind kBinary[] = {NodeKind::kAdd, NodeKind::kSub,
                                     NodeKind::kMul, NodeKind::kDiv,
                                     NodeKind::kMin, NodeKind::kMax};
  static const NodeKind kUnary[] = {NodeKind::kNeg, NodeKind::kLog,
                                    NodeKind::kExp};
  if (rng.Bernoulli(0.25)) {
    return MakeUnary(kUnary[rng.UniformInt(0, 2)],
                     RandomTree(rng, depth - 1, num_vars, num_params));
  }
  return MakeBinary(kBinary[rng.UniformInt(0, 5)],
                    RandomTree(rng, depth - 1, num_vars, num_params),
                    RandomTree(rng, depth - 1, num_vars, num_params));
}

/// Property: the compiled VM is bit-identical to the tree interpreter.
class CompileEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CompileEquivalenceTest, VmMatchesInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const ExprPtr tree = RandomTree(rng, 6, 4, 3);
  const CompiledProgram program = Compile(*tree);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> vars(4), params(3);
    for (double& v : vars) v = rng.Uniform(-10, 10);
    for (double& p : params) p = rng.Uniform(-10, 10);
    const auto ctx = MakeContext(vars, params);
    const double interpreted = EvalExpr(*tree, ctx);
    const double compiled = program.Run(ctx);
    if (std::isnan(interpreted)) {
      EXPECT_TRUE(std::isnan(compiled));
    } else {
      EXPECT_DOUBLE_EQ(interpreted, compiled);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileEquivalenceTest,
                         ::testing::Range(0, 40));

TEST(CompileTest, ProgramSizeEqualsNodeCount) {
  const ExprPtr e = Add(Mul(Variable(0, ""), Constant(2.0)), Constant(1.0));
  EXPECT_EQ(Compile(*e).size(), e->NodeCount());
}

// ------------------------------------------------------------ simplify ----

TEST(SimplifyTest, Identities) {
  const ExprPtr x = Variable(0, "x");
  EXPECT_TRUE(StructurallyEqual(*Simplify(Add(x, Constant(0.0))), *x));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Mul(x, Constant(1.0))), *x));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Sub(x, Constant(0.0))), *x));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Div(x, Constant(1.0))), *x));
  EXPECT_TRUE(
      StructurallyEqual(*Simplify(Mul(x, Constant(0.0))), *Constant(0.0)));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Sub(x, x)), *Constant(0.0)));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Div(x, x)), *Constant(1.0)));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Min(x, x)), *x));
  EXPECT_TRUE(StructurallyEqual(*Simplify(Neg(Neg(x))), *x));
}

TEST(SimplifyTest, ValueDependentIdentitiesRequireProvablyFiniteOperands) {
  // x + y can overflow to inf, where (x+y) - (x+y) is NaN, not 0, and
  // (x+y) / (x+y) is NaN, not 1. The rewrites must not fire. Same for
  // 0 * (x+y): 0 * inf is NaN.
  const ExprPtr sum = Add(Variable(0, "x"), Variable(1, "y"));
  EXPECT_FALSE(
      StructurallyEqual(*Simplify(Sub(sum, sum)), *Constant(0.0)));
  EXPECT_EQ(Simplify(Sub(sum, sum))->NodeCount(), Sub(sum, sum)->NodeCount());
  EXPECT_FALSE(
      StructurallyEqual(*Simplify(Div(sum, sum)), *Constant(1.0)));
  EXPECT_EQ(Simplify(Div(sum, sum))->NodeCount(), Div(sum, sum)->NodeCount());
  EXPECT_FALSE(StructurallyEqual(*Simplify(Mul(Constant(0.0), sum)),
                                 *Constant(0.0)));
  EXPECT_FALSE(StructurallyEqual(*Simplify(Mul(sum, Constant(0.0))),
                                 *Constant(0.0)));
  // An infinite literal is not provably finite either.
  const ExprPtr inf = Constant(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(
      StructurallyEqual(*Simplify(Mul(Constant(0.0), inf)), *Constant(0.0)));

  // Operators that never produce inf from finite inputs keep the rewrites:
  // neg, min, max, log (clamped below), exp (clamped above).
  const ExprPtr safe = Neg(Min(Variable(0, "x"), Exp(Variable(1, "y"))));
  EXPECT_TRUE(
      StructurallyEqual(*Simplify(Sub(safe, safe)), *Constant(0.0)));
  EXPECT_TRUE(
      StructurallyEqual(*Simplify(Div(safe, safe)), *Constant(1.0)));
  // min/max(x, x) -> x holds even for NaN/inf operands (the kernel returns
  // an operand bitwise), so it stays unguarded.
  EXPECT_EQ(Simplify(Min(sum, sum))->NodeCount(), sum->NodeCount());
}

TEST(SimplifyTest, ConstantFolding) {
  const ExprPtr e = Add(Constant(2.0), Mul(Constant(3.0), Constant(4.0)));
  const ExprPtr s = Simplify(e);
  ASSERT_EQ(s->kind(), NodeKind::kConstant);
  EXPECT_DOUBLE_EQ(s->value(), 14.0);
}

TEST(SimplifyTest, FoldingUsesProtectedSemantics) {
  const ExprPtr s = Simplify(Div(Constant(5.0), Constant(0.0)));
  ASSERT_EQ(s->kind(), NodeKind::kConstant);
  EXPECT_DOUBLE_EQ(s->value(), 1.0);
}

TEST(SimplifyTest, CommutativeCanonicalization) {
  const ExprPtr a = Add(Variable(1, "y"), Variable(0, "x"));
  const ExprPtr b = Add(Variable(0, "x"), Variable(1, "y"));
  EXPECT_TRUE(StructurallyEqual(*Simplify(a), *Simplify(b)));
  EXPECT_EQ(Simplify(a)->StructuralHash(), Simplify(b)->StructuralHash());
}

TEST(SimplifyTest, DoesNotFoldNamedParameters) {
  // Parameters are runtime values; folding them would freeze the model.
  const ExprPtr e = Mul(Parameter(0, "p"), Constant(2.0));
  const ExprPtr s = Simplify(e);
  EXPECT_EQ(s->kind(), NodeKind::kMul);
}

/// Property: simplification preserves semantics and never grows the tree.
class SimplifyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyPropertyTest, PreservesSemanticsAndShrinks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const ExprPtr tree = RandomTree(rng, 6, 3, 2);
  const ExprPtr simplified = Simplify(tree);
  EXPECT_LE(simplified->NodeCount(), tree->NodeCount());
  // Idempotence.
  EXPECT_TRUE(StructurallyEqual(*Simplify(simplified), *simplified));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> vars(3), params(2);
    for (double& v : vars) v = rng.Uniform(-4, 4);
    for (double& p : params) p = rng.Uniform(-4, 4);
    const auto ctx = MakeContext(vars, params);
    const double before = EvalExpr(*tree, ctx);
    const double after = EvalExpr(*simplified, ctx);
    if (std::isnan(before)) {
      EXPECT_TRUE(std::isnan(after));
    } else {
      // Commutative reordering can change floating-point rounding; allow a
      // tight relative tolerance.
      EXPECT_NEAR(after, before,
                  1e-9 * std::max(1.0, std::fabs(before)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest, ::testing::Range(0, 40));

// --------------------------------------------------------------- print ----

TEST(PrintTest, InfixGoldenStrings) {
  const ExprPtr x = Variable(0, "x");
  const ExprPtr p = Parameter(0, "C");
  EXPECT_EQ(ToString(*Add(x, Constant(1.0))), "x + 1");
  EXPECT_EQ(ToString(*Mul(Add(x, p), Constant(2.0))), "(x + C) * 2");
  EXPECT_EQ(ToString(*Sub(x, Sub(p, Constant(1.0)))), "x - (C - 1)");
  EXPECT_EQ(ToString(*Min(x, Exp(p))), "min(x, exp(C))");
  EXPECT_EQ(ToString(*Neg(x)), "-x");
}

TEST(PrintTest, SExpression) {
  const ExprPtr e = Mul(Variable(0, "B"), Sub(Variable(1, "mu"), Constant(1.5)));
  EXPECT_EQ(ToSExpression(*e), "(* B (- mu 1.5))");
}

// -------------------------------------------------------------- parser ----

SymbolTable TestSymbols() {
  SymbolTable symbols;
  symbols.variables["x"] = 0;
  symbols.variables["y"] = 1;
  symbols.parameters["C"] = 0;
  return symbols;
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  const auto result = Parse("x + y * 2 - 1", TestSymbols());
  ASSERT_TRUE(result.ok()) << result.error;
  const auto ctx = MakeContext({3.0, 4.0}, {0.0});
  EXPECT_DOUBLE_EQ(EvalExpr(*result.expr, ctx), 3.0 + 4.0 * 2.0 - 1.0);
}

TEST(ParserTest, ParensAndFunctions) {
  const auto result = Parse("min((x + y) * C, exp(1))", TestSymbols());
  ASSERT_TRUE(result.ok()) << result.error;
  const auto ctx = MakeContext({1.0, 2.0}, {10.0});
  EXPECT_DOUBLE_EQ(EvalExpr(*result.expr, ctx), std::exp(1.0));
}

TEST(ParserTest, UnaryMinus) {
  const auto result = Parse("-x * -2", TestSymbols());
  ASSERT_TRUE(result.ok()) << result.error;
  const auto ctx = MakeContext({3.0, 0.0}, {0.0});
  EXPECT_DOUBLE_EQ(EvalExpr(*result.expr, ctx), 6.0);
}

TEST(ParserTest, PrintParseRoundTrip) {
  Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    ExprPtr tree = RandomTree(rng, 5, 2, 1);
    // The test symbol table only has unnamed leaves; rebuild names.
    const auto result = Parse(ToString(*tree), SymbolTable{});
    // Unnamed leaves print as v0/p0 which the empty table cannot resolve;
    // only constant-only trees are guaranteed to round-trip here.
    if (ReferencedVariableSlots(*tree).empty() &&
        ReferencedParameterSlots(*tree).empty()) {
      ASSERT_TRUE(result.ok()) << result.error;
      const auto ctx = MakeContext({}, {});
      const double a = EvalExpr(*tree, ctx);
      const double b = EvalExpr(*result.expr, ctx);
      if (!std::isnan(a)) {
        EXPECT_NEAR(b, a, 1e-6 * std::max(1.0, std::fabs(a)));
      }
    }
  }
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(Parse("x +", TestSymbols()).ok());
  EXPECT_FALSE(Parse("unknown_name", TestSymbols()).ok());
  EXPECT_FALSE(Parse("min(x)", TestSymbols()).ok());
  EXPECT_FALSE(Parse("x @ y", TestSymbols()).ok());
  EXPECT_FALSE(Parse("(x + 1", TestSymbols()).ok());
  EXPECT_FALSE(Parse("x 1", TestSymbols()).ok());
}

TEST(ParserTest, MalformedNumberIsAnErrorNotAHang) {
  // A lone '.' starts the number alphabet but strtod consumes nothing;
  // before the lexer guard this spun forever instead of reporting.
  EXPECT_FALSE(Parse(".", TestSymbols()).ok());
  EXPECT_FALSE(Parse("x + .", TestSymbols()).ok());
  EXPECT_FALSE(Parse("min(., x)", TestSymbols()).ok());
}

// ------------------------------------------------- round-trip edge cases ----

/// Asserts the printed form is a parser fixpoint: parse(print(t)) prints to
/// the same text. Structural identity is deliberately NOT required — e.g.
/// Constant(-1.5) reparses as Neg(Constant(1.5)) — so the stable invariant
/// is text plus bitwise evaluation, matching the src/check/ oracle.
void ExpectTextFixpoint(const ExprPtr& tree, const SymbolTable& symbols,
                        const EvalContext& ctx) {
  const std::string once = ToString(*tree);
  const auto reparsed = Parse(once, symbols);
  ASSERT_TRUE(reparsed.ok()) << "'" << once << "': " << reparsed.error;
  EXPECT_EQ(ToString(*reparsed.expr), once);
  const double a = EvalExpr(*tree, ctx);
  const double b = EvalExpr(*reparsed.expr, ctx);
  if (std::isnan(a)) {
    EXPECT_TRUE(std::isnan(b)) << "'" << once << "': " << a << " vs " << b;
  } else {
    EXPECT_EQ(a, b) << "'" << once << "'";  // bitwise, not approximate
  }
}

TEST(RoundTripTest, NegativeConstantLiterals) {
  const auto symbols = TestSymbols();
  const ExprPtr x = Variable(0, "x");
  const auto ctx = MakeContext({3.0, 0.0}, {0.0});
  ExpectTextFixpoint(Constant(-1.5), symbols, ctx);
  ExpectTextFixpoint(Add(x, Constant(-2.0)), symbols, ctx);
  ExpectTextFixpoint(Mul(Constant(-0.25), x), symbols, ctx);
  ExpectTextFixpoint(Sub(Constant(-1.0), Constant(-2.0)), symbols, ctx);
  ExpectTextFixpoint(Exp(Constant(-80.5)), symbols, ctx);
}

TEST(RoundTripTest, UnaryNegUnderDivision) {
  const auto symbols = TestSymbols();
  const ExprPtr x = Variable(0, "x");
  const ExprPtr y = Variable(1, "y");
  const auto ctx = MakeContext({3.0, 7.0}, {2.0});
  ExpectTextFixpoint(Div(x, Neg(y)), symbols, ctx);
  ExpectTextFixpoint(Div(Neg(x), y), symbols, ctx);
  ExpectTextFixpoint(Neg(Div(x, y)), symbols, ctx);
  ExpectTextFixpoint(Div(Neg(x), Neg(Add(y, Constant(1.0)))), symbols, ctx);
  ExpectTextFixpoint(Div(Constant(1.0), Neg(Neg(y))), symbols, ctx);
}

TEST(RoundTripTest, NestedMinMax) {
  const auto symbols = TestSymbols();
  const ExprPtr x = Variable(0, "x");
  const ExprPtr y = Variable(1, "y");
  const ExprPtr c = Parameter(0, "C");
  const auto ctx = MakeContext({3.0, 7.0}, {2.0});
  ExpectTextFixpoint(Min(Max(x, c), Min(y, Constant(1.0))), symbols, ctx);
  ExpectTextFixpoint(Max(Min(Min(x, y), c), Neg(x)), symbols, ctx);
  ExpectTextFixpoint(Min(x, Max(y, Max(c, Constant(-3.0)))), symbols, ctx);
}

TEST(RoundTripTest, NonFiniteConstantsReparse) {
  // Constant folding can produce non-finite constants (1e308 + 1e308), the
  // printer renders them as inf/nan, and the parser must accept both back.
  const auto symbols = TestSymbols();
  const auto ctx = MakeContext({3.0, 7.0}, {2.0});
  const double inf = std::numeric_limits<double>::infinity();
  ExpectTextFixpoint(Constant(inf), symbols, ctx);
  ExpectTextFixpoint(Constant(-inf), symbols, ctx);
  ExpectTextFixpoint(Add(Variable(0, "x"), Constant(inf)), symbols, ctx);
  ExpectTextFixpoint(Constant(std::numeric_limits<double>::quiet_NaN()),
                     symbols, ctx);
  // Overflowing decimal literals read as infinity rather than erroring.
  const auto overflow = Parse("1e999", symbols);
  ASSERT_TRUE(overflow.ok()) << overflow.error;
  EXPECT_TRUE(std::isinf(EvalExpr(*overflow.expr, ctx)));
}

TEST(ParserTest, VariableShadowsParameterOfSameName) {
  SymbolTable symbols = TestSymbols();
  symbols.parameters["x"] = 0;  // same name as variable slot 0
  const auto result = Parse("x + C", symbols);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.expr->children()[0]->kind(), NodeKind::kVariable);
  // Variable x = 3 and parameter slot 0 = 10: "x" resolves to the
  // variable, "C" still reaches the parameter it shares a slot with.
  const auto ctx = MakeContext({3.0, 0.0}, {10.0});
  EXPECT_DOUBLE_EQ(EvalExpr(*result.expr, ctx), 3.0 + 10.0);
}

TEST(ParserTest, SymbolNamedInfShadowsReservedLiteral) {
  SymbolTable symbols;
  symbols.variables["inf"] = 0;
  const auto result = Parse("inf + 1", symbols);
  ASSERT_TRUE(result.ok()) << result.error;
  const auto ctx = MakeContext({4.0}, {});
  EXPECT_DOUBLE_EQ(EvalExpr(*result.expr, ctx), 5.0);
}

}  // namespace
}  // namespace gmr::expr
