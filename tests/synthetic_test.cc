#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "river/synthetic.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

SyntheticConfig SmallConfig(std::uint64_t seed = 42) {
  SyntheticConfig config;
  config.years = 3;
  config.train_years = 2;
  config.seed = seed;
  return config;
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const RiverDataset a = GenerateNakdongLike(SmallConfig(9));
  const RiverDataset b = GenerateNakdongLike(SmallConfig(9));
  ASSERT_EQ(a.num_days, b.num_days);
  EXPECT_EQ(a.observed_bphy, b.observed_bphy);
  EXPECT_EQ(a.drivers[kVtmp], b.drivers[kVtmp]);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const RiverDataset a = GenerateNakdongLike(SmallConfig(1));
  const RiverDataset b = GenerateNakdongLike(SmallConfig(2));
  EXPECT_NE(a.observed_bphy, b.observed_bphy);
}

TEST(SyntheticTest, ShapesAndSplit) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  EXPECT_EQ(dataset.num_days, static_cast<std::size_t>(3 * kDaysPerYear));
  EXPECT_EQ(dataset.train_end, static_cast<std::size_t>(2 * kDaysPerYear));
  EXPECT_EQ(dataset.NumTestDays(), static_cast<std::size_t>(kDaysPerYear));
  for (int slot : ObservedVariableSlots()) {
    EXPECT_EQ(dataset.drivers[static_cast<std::size_t>(slot)].size(),
              dataset.num_days);
  }
  EXPECT_EQ(dataset.observed_bphy.size(), dataset.num_days);
  // Nine real stations for the -ALL baselines.
  EXPECT_EQ(dataset.station_names.size(), 9u);
  EXPECT_EQ(dataset.station_drivers.size(), 9u);
  for (const auto& station : dataset.station_drivers) {
    EXPECT_EQ(station.size(), ObservedVariableSlots().size());
  }
}

TEST(SyntheticTest, DriversWithinPhysicalRanges) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  struct Range {
    int slot;
    double lo;
    double hi;
  };
  // Routing mixes station series, so bounds are the generator clamps.
  const Range ranges[] = {
      {kVtmp, 0.0, 33.0}, {kVlgt, 0.0, 31.0},  {kVn, 0.3, 6.5},
      {kVp, 0.004, 0.35}, {kVsi, 0.4, 9.5},    {kVcd, 140.0, 620.0},
      {kValk, 18.0, 85.0}, {kVph, 6.7, 9.5},   {kVdo, 3.5, 16.5},
      {kVsd, 0.2, 3.6},
  };
  for (const Range& range : ranges) {
    const auto& series = dataset.drivers[static_cast<std::size_t>(range.slot)];
    for (double v : series) {
      ASSERT_GE(v, range.lo) << VariableName(range.slot);
      ASSERT_LE(v, range.hi) << VariableName(range.slot);
    }
  }
}

TEST(SyntheticTest, ObservationsPositiveAndFinite) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  for (double v : dataset.observed_bphy) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GT(v, 0.0);
  }
  // Biomass must actually vary (blooms and clear-water phases).
  EXPECT_GT(StdDev(dataset.observed_bphy), 1.0);
}

TEST(SyntheticTest, ChlorophyllSampledWeekly) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  ASSERT_GT(dataset.bphy_sample_days.size(), 2u);
  for (std::size_t i = 1; i < dataset.bphy_sample_days.size(); ++i) {
    EXPECT_EQ(dataset.bphy_sample_days[i] - dataset.bphy_sample_days[i - 1],
              7u);
  }
  // Observed series interpolates the samples: linear between sample days.
  const std::size_t d0 = dataset.bphy_sample_days[10];
  const std::size_t d1 = dataset.bphy_sample_days[11];
  const double mid_expected =
      0.5 * (dataset.observed_bphy[d0] + dataset.observed_bphy[d1]);
  // Sample interval is 7, so the midpoint day d0+3.5 does not exist; check
  // day d0+3 and d0+4 bracket the linear value.
  const double v3 = dataset.observed_bphy[d0 + 3];
  const double v4 = dataset.observed_bphy[d0 + 4];
  EXPECT_NEAR(0.5 * (v3 + v4), mid_expected, 1e-9);
}

TEST(SyntheticTest, SeasonalTemperatureCycle) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  // Mean July temperature must exceed mean January temperature clearly.
  double summer = 0.0;
  double winter = 0.0;
  int summer_n = 0;
  int winter_n = 0;
  for (std::size_t t = 0; t < dataset.num_days; ++t) {
    const int doy = static_cast<int>(t % kDaysPerYear);
    if (doy >= 181 && doy < 212) {
      summer += dataset.drivers[kVtmp][t];
      ++summer_n;
    } else if (doy < 31) {
      winter += dataset.drivers[kVtmp][t];
      ++winter_n;
    }
  }
  EXPECT_GT(summer / summer_n, winter / winter_n + 10.0);
}

TEST(SyntheticTest, HiddenStructureChangesObservations) {
  SyntheticConfig with = SmallConfig(77);
  SyntheticConfig without = SmallConfig(77);
  without.plant_hidden_structure = false;
  const RiverDataset a = GenerateNakdongLike(with);
  const RiverDataset b = GenerateNakdongLike(without);
  // Same seed, different truth process -> different plankton.
  double max_diff = 0.0;
  for (std::size_t t = 0; t < a.num_days; ++t) {
    max_diff = std::max(
        max_diff, std::fabs(a.observed_bphy[t] - b.observed_bphy[t]));
  }
  EXPECT_GT(max_diff, 1.0);
}

TEST(SyntheticTest, InitialStatesComeFromObservations) {
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  EXPECT_DOUBLE_EQ(dataset.initial_bphy, dataset.observed_bphy.front());
  EXPECT_DOUBLE_EQ(dataset.test_initial_bphy,
                   dataset.observed_bphy[dataset.train_end]);
  EXPECT_GT(dataset.initial_bzoo, 0.0);
}

TEST(SyntheticTest, ConductivityCorrelatesWithNitrogen) {
  // The generator plants V_cd as a dissolved-load proxy; the routed series
  // must preserve a clear positive association (Section IV-E rationale).
  const RiverDataset dataset = GenerateNakdongLike(SmallConfig());
  EXPECT_GT(PearsonCorrelation(dataset.drivers[kVcd], dataset.drivers[kVn]),
            0.3);
}

}  // namespace
}  // namespace gmr::river
