#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/analysis.h"
#include "core/gmr.h"
#include "core/river_grammar.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/synthetic.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace gmr::core {
namespace {

namespace e = gmr::expr;
namespace r = gmr::river;
namespace t = gmr::tag;

// ------------------------------------------------------- river grammar ----

TEST(RiverGrammarTest, SeedExpandsToManualProcess) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  // The unrevised seed derivation must lower to exactly Eqs. (1)-(2).
  tag::DerivationNode seed;
  seed.tree_index = knowledge.seed_alpha_index;
  const auto equations = t::ExpandToExpressions(knowledge.grammar, seed);
  const auto manual = r::ManualProcess();
  ASSERT_EQ(equations.size(), 2u);
  EXPECT_TRUE(e::StructurallyEqual(*equations[0], *manual[0]));
  EXPECT_TRUE(e::StructurallyEqual(*equations[1], *manual[1]));
}

TEST(RiverGrammarTest, BetaTreeCountMatchesTableII) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  // Per extension: connectors = |vars|+1 (incl. R), binary extenders =
  // 4 * (|vars|+1), unary extenders = 2.
  // Ext1: 4 + 16 + 2 = 22, Ext2: 2 + 8 + 2 = 12, Ext3: 22,
  // Ext5..Ext9: 5 * (2 + 8 + 2) = 60. Total 116.
  EXPECT_EQ(knowledge.grammar.num_beta_trees(), 116u);
  EXPECT_EQ(knowledge.grammar.num_alpha_trees(), 1u);
}

TEST(RiverGrammarTest, ConnectorAndExtenderLabelsAreDisjoint) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  // Connector betas must never adjoin at extender sites and vice versa:
  // each beta's root label determines its sites, so it suffices that no
  // label is both an ExtC and ExtE label.
  for (int ext : {1, 2, 3, 5, 6, 7, 8, 9}) {
    const std::string extc = "ExtC" + std::to_string(ext);
    const std::string exte = "ExtE" + std::to_string(ext);
    EXPECT_TRUE(knowledge.grammar.HasCompatibleBeta(extc)) << extc;
    EXPECT_TRUE(knowledge.grammar.HasCompatibleBeta(exte)) << exte;
    for (int index : knowledge.grammar.BetasWithRootLabel(extc)) {
      EXPECT_EQ(knowledge.grammar.beta(index).root_label(), extc);
    }
  }
  // No beta adjoins at plain expression nodes: the seed structure is
  // preserved except at designated extension points.
  EXPECT_FALSE(knowledge.grammar.HasCompatibleBeta(t::kExpSymbol));
}

TEST(RiverGrammarTest, Ext1ConnectorsUseAdditionOnly) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  for (int index : knowledge.grammar.BetasWithRootLabel("ExtC1")) {
    const t::ElementaryTree& beta = knowledge.grammar.beta(index);
    EXPECT_EQ(beta.root().op, e::NodeKind::kAdd) << beta.name();
  }
  for (int index : knowledge.grammar.BetasWithRootLabel("ExtC9")) {
    const t::ElementaryTree& beta = knowledge.grammar.beta(index);
    EXPECT_EQ(beta.root().op, e::NodeKind::kMul) << beta.name();
  }
}

TEST(RiverGrammarTest, ExtensionVariablesMatchTableII) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  // Collect the variables reachable through Ext1 revisions.
  auto vars_for = [&](const std::string& label) {
    std::set<int> slots;
    for (int index : knowledge.grammar.BetasWithRootLabel(label)) {
      // Inspect the elementary tree's leaves directly.
      std::vector<const t::TagNode*> stack{&knowledge.grammar.beta(index)
                                                .root()};
      while (!stack.empty()) {
        const t::TagNode* top = stack.back();
        stack.pop_back();
        if (top->kind == t::TagNode::Kind::kLeaf && top->leaf != nullptr) {
          for (int slot : e::ReferencedVariableSlots(*top->leaf)) {
            slots.insert(slot);
          }
        }
        for (const auto& child : top->children) stack.push_back(child.get());
      }
    }
    return slots;
  };
  EXPECT_EQ(vars_for("ExtC1"),
            (std::set<int>{r::kVcd, r::kVph, r::kValk}));
  EXPECT_EQ(vars_for("ExtC2"), (std::set<int>{r::kVsd}));
  EXPECT_EQ(vars_for("ExtC3"),
            (std::set<int>{r::kVdo, r::kVph, r::kValk}));
  EXPECT_EQ(vars_for("ExtC5"), (std::set<int>{r::kVtmp}));
}


TEST(RiverGrammarTest, ConnectorsIntroduceScaledOperands) {
  // Connector beta trees enter with `var * R` (R a lexeme slot) so that
  // revisions start at a tunable magnitude; see river_grammar.cc.
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  for (int index : knowledge.grammar.BetasWithRootLabel("ExtC1")) {
    const t::ElementaryTree& beta = knowledge.grammar.beta(index);
    // Every connector exposes exactly one open R slot.
    ASSERT_EQ(beta.slot_labels().size(), 1u) << beta.name();
    EXPECT_EQ(beta.slot_labels()[0], "R") << beta.name();
  }
}

TEST(RiverGrammarTest, RandomRevisionsStayValidAndLowerable) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    tag::DerivationPtr genotype = t::GrowRandom(
        knowledge.grammar, knowledge.seed_alpha_index, 12, rng);
    std::string error;
    ASSERT_TRUE(t::Validate(knowledge.grammar, *genotype, &error)) << error;
    const auto equations =
        t::ExpandToExpressions(knowledge.grammar, *genotype);
    ASSERT_EQ(equations.size(), 2u);
  }
}

TEST(RiverGrammarTest, PriorsAreTableIII) {
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  EXPECT_EQ(knowledge.priors.size(),
            static_cast<std::size_t>(r::kNumParameters));
}

// ----------------------------------------------------------------- GMR ----

river::RiverDataset QuickDataset() {
  river::SyntheticConfig config;
  config.years = 2;
  config.train_years = 1;
  config.seed = 3;
  return river::GenerateNakdongLike(config);
}

TEST(GmrTest, EvaluateAccuracyIsFiniteAndConsistent) {
  const river::RiverDataset dataset = QuickDataset();
  const auto report = EvaluateAccuracy(
      r::ManualProcess(), gp::PriorMeans(r::RiverParameterPriors()), dataset,
      river::SimulationConfig{});
  EXPECT_TRUE(std::isfinite(report.train_rmse));
  EXPECT_TRUE(std::isfinite(report.test_rmse));
  EXPECT_LE(report.train_mae, report.train_rmse);
  EXPECT_LE(report.test_mae, report.test_rmse);
}

TEST(GmrTest, ShortRunImprovesOnManual) {
  const river::RiverDataset dataset = QuickDataset();
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  GmrConfig config;
  config.tag3p.population_size = 16;
  config.tag3p.max_generations = 5;
  config.tag3p.local_search_steps = 1;
  config.tag3p.sigma_rampdown_generations = 2;
  config.tag3p.seed = 7;
  const GmrRunResult result = RunGmr(dataset, knowledge, config);

  const auto manual = EvaluateAccuracy(
      r::ManualProcess(), gp::PriorMeans(knowledge.priors), dataset,
      river::SimulationConfig{});
  EXPECT_LT(result.train_rmse, manual.train_rmse);
  ASSERT_EQ(result.best_equations.size(), 2u);
  EXPECT_FALSE(DescribeModel(result.best_equations).empty());
}

TEST(GmrTest, RunIsDeterministicForSeed) {
  const river::RiverDataset dataset = QuickDataset();
  const RiverPriorKnowledge knowledge = BuildRiverPriorKnowledge();
  GmrConfig config;
  config.tag3p.population_size = 10;
  config.tag3p.max_generations = 3;
  config.tag3p.local_search_steps = 1;
  config.tag3p.seed = 77;
  const GmrRunResult a = RunGmr(dataset, knowledge, config);
  const GmrRunResult b = RunGmr(dataset, knowledge, config);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  EXPECT_DOUBLE_EQ(a.train_rmse, b.train_rmse);
}

// ------------------------------------------------------------ analysis ----

TEST(AnalysisTest, SelectivityCountsVariablePresence) {
  const river::RiverDataset dataset = QuickDataset();
  // Two models: MANUAL (has V_lgt, V_tmp but no V_ph), and MANUAL + a pH
  // term.
  CandidateModel manual;
  manual.equations = r::ManualProcess();
  manual.parameters = gp::PriorMeans(r::RiverParameterPriors());

  CandidateModel with_ph = manual;
  with_ph.equations[0] =
      e::Add(with_ph.equations[0],
             e::Mul(e::Constant(0.5), r::Var(r::kVph)));

  SelectivityConfig config;
  config.slots = {r::kVlgt, r::kVph};
  const SelectivityReport report =
      AnalyzeSelectivity({manual, with_ph}, dataset, config);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(report.entries[0].selected_pct, 100.0);  // V_lgt in both
  EXPECT_DOUBLE_EQ(report.entries[1].selected_pct, 50.0);   // V_ph in one
  // Category percentages partition the selected percentage.
  for (const auto& entry : report.entries) {
    EXPECT_NEAR(entry.correlated_pct + entry.inversely_correlated_pct +
                    entry.uncorrelated_pct,
                entry.selected_pct, 1e-9);
  }
}

TEST(AnalysisTest, PerturbationResponseSignMatchesTermSign) {
  const river::RiverDataset dataset = QuickDataset();
  CandidateModel model;
  model.equations = r::ManualProcess();
  model.parameters = gp::PriorMeans(r::RiverParameterPriors());
  // Add a strongly positive pH source term: perturbing pH up must raise
  // biomass.
  model.equations[0] = e::Add(model.equations[0],
                              e::Mul(e::Constant(2.0), r::Var(r::kVph)));
  const double response = PerturbationResponse(
      model, dataset, r::kVph, 0.10, river::SimulationConfig{});
  EXPECT_GT(response, 0.0);
}

}  // namespace
}  // namespace gmr::core
