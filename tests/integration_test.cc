// Cross-module integration tests: the full GMR pipeline against baselines
// on a small synthetic dataset, and invariants connecting the speedup
// techniques to result correctness.

#include <gtest/gtest.h>

#include <cmath>

#include "calibrate/methods.h"
#include "core/gmr.h"
#include "core/river_grammar.h"
#include "gp/evaluator.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"

namespace gmr {
namespace {

river::RiverDataset SmallDataset() {
  river::SyntheticConfig config;
  config.years = 3;
  config.train_years = 2;
  config.seed = 7;
  return river::GenerateNakdongLike(config);
}

TEST(IntegrationTest, CalibrationImprovesOnManualExpertPoint) {
  const river::RiverDataset dataset = SmallDataset();
  const auto priors = river::RiverParameterPriors();
  const auto manual = river::ManualProcess();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  calibrate::Objective objective = [&](const std::vector<double>& params) {
    auto eval = fitness.Begin(manual, params, /*compiled=*/true);
    while (eval->Step()) {
    }
    return eval->CurrentFitness();
  };
  const auto bounds = calibrate::BoundsFromPriors(priors);
  const std::vector<double> initial = gp::PriorMeans(priors);
  const double manual_rmse = objective(initial);

  calibrate::SceUaCalibrator sce;
  Rng rng(5);
  const auto result =
      sce.Calibrate(objective, bounds, initial, /*budget=*/400, rng);
  EXPECT_LT(result.best_objective, manual_rmse);
}

TEST(IntegrationTest, SpeedupsDoNotChangeFullEvaluationResult) {
  const river::RiverDataset dataset = SmallDataset();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  Rng rng(11);
  gp::Individual individual;
  individual.genotype = tag::GrowRandom(knowledge.grammar,
                                        knowledge.seed_alpha_index, 8, rng);
  individual.parameters = gp::PriorMeans(knowledge.priors);

  // All four backend/caching combinations must agree on the fitness of a
  // fully evaluated individual.
  double reference = 0.0;
  bool first = true;
  for (bool caching : {false, true}) {
    for (bool compiled : {false, true}) {
      gp::SpeedupConfig config;
      config.tree_caching = caching;
      config.runtime_compilation = compiled;
      config.short_circuiting = false;
      gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
      gp::Individual copy = individual.Clone();
      evaluator.Evaluate(&copy);
      if (first) {
        reference = copy.fitness;
        first = false;
      } else {
        EXPECT_DOUBLE_EQ(copy.fitness, reference);
      }
    }
  }
}

TEST(IntegrationTest, ShortCircuitingNeverChangesFullyEvaluatedFitness) {
  const river::RiverDataset dataset = SmallDataset();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  gp::SpeedupConfig es_on;
  es_on.short_circuiting = true;
  es_on.runtime_compilation = true;
  gp::SpeedupConfig es_off;
  es_off.runtime_compilation = true;
  gp::FitnessEvaluator with_es(&knowledge.grammar, &fitness, es_on);
  gp::FitnessEvaluator without_es(&knowledge.grammar, &fitness, es_off);

  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    gp::Individual individual;
    individual.genotype = tag::GrowRandom(
        knowledge.grammar, knowledge.seed_alpha_index, 6, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    gp::Individual a = individual.Clone();
    gp::Individual b = individual.Clone();
    with_es.Evaluate(&a);
    without_es.Evaluate(&b);
    // ES may over-estimate the fitness of cut-off individuals, but any
    // individual it evaluated fully must carry the exact fitness.
    if (a.fully_evaluated) {
      EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
    } else {
      EXPECT_TRUE(std::isfinite(a.fitness));
    }
  }
  EXPECT_LE(with_es.stats().time_steps_evaluated,
            without_es.stats().time_steps_evaluated);
}

TEST(IntegrationTest, GmrBeatsManualOnTestPeriod) {
  const river::RiverDataset dataset = SmallDataset();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  core::GmrConfig config;
  config.tag3p.population_size = 24;
  config.tag3p.max_generations = 8;
  config.tag3p.local_search_steps = 2;
  config.tag3p.sigma_rampdown_generations = 3;
  config.tag3p.seed = 19;
  const core::GmrRunResult gmr = RunGmr(dataset, knowledge, config);

  const core::AccuracyReport manual = core::EvaluateAccuracy(
      river::ManualProcess(), gp::PriorMeans(knowledge.priors), dataset,
      river::SimulationConfig{});
  EXPECT_LT(gmr.test_rmse, manual.test_rmse);
  EXPECT_LT(gmr.test_mae, manual.test_mae);
  // The revised process must stay consistent with prior knowledge: both
  // state variables still present, equations still lower and simulate.
  ASSERT_EQ(gmr.best_equations.size(), 2u);
}

TEST(IntegrationTest, DatasetExportImportPreservesAccuracy) {
  const river::RiverDataset dataset = SmallDataset();
  const CsvTable table = dataset.ToCsv();
  river::RiverDataset loaded;
  ASSERT_TRUE(river::RiverDataset::FromCsv(table, dataset.train_end,
                                           &loaded));
  loaded.initial_bzoo = dataset.initial_bzoo;
  loaded.test_initial_bzoo = dataset.test_initial_bzoo;
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const auto a = core::EvaluateAccuracy(river::ManualProcess(), params,
                                        dataset, river::SimulationConfig{});
  const auto b = core::EvaluateAccuracy(river::ManualProcess(), params,
                                        loaded, river::SimulationConfig{});
  EXPECT_DOUBLE_EQ(a.train_rmse, b.train_rmse);
  EXPECT_DOUBLE_EQ(a.test_rmse, b.test_rmse);
}

}  // namespace
}  // namespace gmr
