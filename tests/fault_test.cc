// Fault-containment tests: the GMR_FAULT injection harness, divergence
// watchdogs in the river simulator, the JIT circuit breaker, exception-safe
// thread-pool batches, and the structured EvalOutcome taxonomy threaded
// through the evaluator. Labeled `fault` and `tsan` in ctest.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/river_grammar.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "gp/evaluator.h"
#include "gp/tag3p.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace gmr {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;

/// Arms a fault spec for the scope of one test and guarantees cleanup.
struct ScopedFault {
  explicit ScopedFault(const std::string& spec) {
    std::string error;
    armed = SetFaultSpec(spec, &error);
    EXPECT_TRUE(armed) << error;
  }
  ~ScopedFault() { ClearFaults(); }
  bool armed = false;
};

// ------------------------------------------------------------ spec layer ----

TEST(FaultInjectionTest, PointNamesRoundTrip) {
  EXPECT_STREQ(FaultPointName(FaultPoint::kJitCompile), "jit_compile");
  EXPECT_STREQ(FaultPointName(FaultPoint::kDerivativeNan), "derivative_nan");
  EXPECT_STREQ(FaultPointName(FaultPoint::kPoolTask), "pool_task");
}

TEST(FaultInjectionTest, MalformedSpecsAreRejected) {
  std::string error;
  EXPECT_FALSE(SetFaultSpec("bogus_point:always", &error));
  EXPECT_NE(error.find("bogus_point"), std::string::npos);
  EXPECT_FALSE(SetFaultSpec("jit_compile:maybe", &error));
  EXPECT_FALSE(SetFaultSpec("jit_compile", &error));
  EXPECT_FALSE(SetFaultSpec("jit_compile:prob:1.5", &error));
  EXPECT_FALSE(SetFaultSpec("jit_compile:prob:0.5:notanumber", &error));
  EXPECT_FALSE(SetFaultSpec("jit_compile:first:xyz", &error));
  // A rejected spec leaves everything disarmed.
  EXPECT_FALSE(AnyFaultArmed());
  ClearFaults();
}

TEST(FaultInjectionTest, AlwaysNeverOnceModes) {
  {
    ScopedFault fault("derivative_nan:always,pool_task:never");
    EXPECT_TRUE(AnyFaultArmed());
    EXPECT_TRUE(FaultInjected(FaultPoint::kDerivativeNan));
    EXPECT_TRUE(FaultInjected(FaultPoint::kDerivativeNan));
    EXPECT_FALSE(FaultInjected(FaultPoint::kPoolTask));
    EXPECT_FALSE(FaultInjected(FaultPoint::kJitCompile));
  }
  EXPECT_FALSE(AnyFaultArmed());
  {
    ScopedFault fault("jit_compile:once");
    EXPECT_TRUE(FaultInjected(FaultPoint::kJitCompile));
    EXPECT_FALSE(FaultInjected(FaultPoint::kJitCompile));
  }
}

TEST(FaultInjectionTest, FirstAndAfterThresholds) {
  {
    ScopedFault fault("derivative_nan:first:3");
    for (int call = 0; call < 8; ++call) {
      EXPECT_EQ(FaultInjected(FaultPoint::kDerivativeNan), call < 3)
          << "call " << call;
    }
  }
  {
    ScopedFault fault("derivative_nan:after:3");
    for (int call = 0; call < 8; ++call) {
      EXPECT_EQ(FaultInjected(FaultPoint::kDerivativeNan), call >= 3)
          << "call " << call;
    }
  }
}

TEST(FaultInjectionTest, ProbModeIsSeededAndDeterministic) {
  std::vector<bool> pattern;
  {
    ScopedFault fault("pool_task:prob:0.5:123");
    for (int call = 0; call < 200; ++call) {
      pattern.push_back(FaultInjected(FaultPoint::kPoolTask));
    }
  }
  const std::size_t fired =
      static_cast<std::size_t>(std::count(pattern.begin(), pattern.end(),
                                          true));
  EXPECT_GT(fired, 50u);
  EXPECT_LT(fired, 150u);
  // Re-arming the same spec replays the identical firing pattern.
  {
    ScopedFault fault("pool_task:prob:0.5:123");
    for (std::size_t call = 0; call < pattern.size(); ++call) {
      EXPECT_EQ(FaultInjected(FaultPoint::kPoolTask), pattern[call])
          << "call " << call;
    }
  }
  // A different seed yields a different pattern.
  {
    ScopedFault fault("pool_task:prob:0.5:124");
    std::vector<bool> other;
    for (std::size_t call = 0; call < pattern.size(); ++call) {
      other.push_back(FaultInjected(FaultPoint::kPoolTask));
    }
    EXPECT_NE(other, pattern);
  }
}

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPoolFaultTest, ThrowingBodyIsContained) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> ran(kN);
  const std::vector<TaskFailure> failures =
      pool.ParallelFor(kN, [&ran](std::size_t i, int) {
        if (i == 3) throw std::runtime_error("boom 3");
        ran[i].fetch_add(1, std::memory_order_relaxed);
      });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 3u);
  EXPECT_EQ(failures[0].message, "boom 3");
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(ran[i].load(), i == 3 ? 0 : 1) << "index " << i;
  }
  // The pool stays fully usable after a contained failure.
  std::atomic<int> total{0};
  EXPECT_TRUE(pool.ParallelFor(10, [&total](std::size_t, int) {
                    total.fetch_add(1, std::memory_order_relaxed);
                  })
                  .empty());
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolFaultTest, FailuresAreSortedByIndex) {
  ThreadPool pool(4);
  const std::vector<TaskFailure> failures =
      pool.ParallelFor(23, [](std::size_t i, int) {
        if (i % 5 == 0) throw std::runtime_error("boom");
      });
  ASSERT_EQ(failures.size(), 5u);
  const std::size_t expected[] = {0, 5, 10, 15, 20};
  for (std::size_t k = 0; k < failures.size(); ++k) {
    EXPECT_EQ(failures[k].index, expected[k]);
  }
}

TEST(ThreadPoolFaultTest, NonStdExceptionGetsGenericMessage) {
  const std::vector<TaskFailure> failures =
      ParallelFor(nullptr, 2, [](std::size_t i) {
        if (i == 1) throw 42;
      });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 1u);
  EXPECT_EQ(failures[0].message, "unknown exception");
}

TEST(ThreadPoolFaultTest, PoolTaskInjectionFiresInIndexOrderInline) {
  ScopedFault fault("pool_task:first:2");
  ThreadPool single(1);
  std::vector<std::size_t> ran;
  const std::vector<TaskFailure> failures =
      single.ParallelFor(5, [&ran](std::size_t i, int) { ran.push_back(i); });
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].index, 0u);
  EXPECT_EQ(failures[1].index, 1u);
  EXPECT_EQ(failures[0].message, "fault injection: pool_task");
  EXPECT_EQ(ran, (std::vector<std::size_t>{2, 3, 4}));
}

TEST(ThreadPoolFaultTest, FreeHelperContainsThrowsWithoutPool) {
  std::vector<std::size_t> ran;
  const std::vector<TaskFailure> failures =
      ParallelFor(nullptr, 4, [&ran](std::size_t i) {
        if (i == 2) throw std::runtime_error("free boom");
        ran.push_back(i);
      });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 2u);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 3}));
}

// --------------------------------------------------------------- simulator ----

river::RiverDataset TinyDataset(std::size_t days) {
  river::RiverDataset dataset;
  dataset.num_days = days;
  dataset.drivers.assign(river::kNumVariables, {});
  for (int slot : river::ObservedVariableSlots()) {
    dataset.drivers[static_cast<std::size_t>(slot)] =
        std::vector<double>(days, 1.0);
  }
  dataset.observed_bphy = std::vector<double>(days, 5.0);
  dataset.train_end = days / 2;
  dataset.initial_bphy = 5.0;
  dataset.initial_bzoo = 1.0;
  dataset.test_initial_bphy = 5.0;
  dataset.test_initial_bzoo = 1.0;
  return dataset;
}

std::vector<double> ZeroParams() {
  return std::vector<double>(river::kNumParameters, 0.0);
}

TEST(SimulatorFaultTest, BenignRunReportsOk) {
  const river::RiverDataset dataset = TinyDataset(20);
  const std::vector<e::ExprPtr> equations{e::Constant(0.1), e::Constant(0.0)};
  river::SimulationReport report;
  const auto predicted =
      river::SimulateBPhy(equations, ZeroParams(), dataset, 0, 20, 5.0, 1.0,
                          river::SimulationConfig{}, true, &report);
  ASSERT_EQ(predicted.size(), 20u);
  EXPECT_EQ(report.outcome, EvalOutcome::kOk);
  EXPECT_FALSE(report.aborted);
  EXPECT_FALSE(report.jit_fallback);
  EXPECT_EQ(report.days_simulated, 20u);
  EXPECT_EQ(report.days_before_abort, 20u);
  EXPECT_EQ(report.substeps_used, 40u);  // 2 substeps/day
  EXPECT_EQ(report.nonfinite_derivatives, 0u);
  EXPECT_EQ(report.clamp_saturations, 0u);
}

TEST(SimulatorFaultTest, ClampIsSignAware) {
  const river::RiverDataset dataset = TinyDataset(10);
  river::SimulationConfig config;
  // A huge NEGATIVE derivative overflows to -inf: the population crashed,
  // so the state must pin to the floor, not teleport to the ceiling (the
  // pre-fix behavior).
  const std::vector<e::ExprPtr> crash{
      e::Mul(e::Constant(-1e308), e::Variable(river::kBPhy, "B")),
      e::Constant(0.0)};
  river::SimulationReport report;
  const auto predicted = river::SimulateBPhy(
      crash, ZeroParams(), dataset, 0, 10, 5.0, 1.0, config, true, &report);
  EXPECT_DOUBLE_EQ(predicted.front(), config.state_min);
  // Floor-pinning is die-off, not divergence: no saturation events.
  EXPECT_EQ(report.clamp_saturations, 0u);
}

TEST(SimulatorFaultTest, NonFiniteDerivativeWatchdogAborts) {
  const river::RiverDataset dataset = TinyDataset(40);
  river::SimulationConfig config;  // max_nonfinite_derivatives = 8
  const std::vector<e::ExprPtr> divergent{
      e::Mul(e::Constant(1e308), e::Variable(river::kBPhy, "B")),
      e::Constant(0.0)};
  river::SimulationReport report;
  const auto predicted =
      river::SimulateBPhy(divergent, ZeroParams(), dataset, 0, 40, 5.0, 1.0,
                          config, true, &report);
  EXPECT_EQ(report.outcome, EvalOutcome::kNonFiniteDerivative);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.nonfinite_derivatives, 8u);
  // The watchdog bounds the work: 8 substeps = 4 days, not 40.
  EXPECT_EQ(report.substeps_used, 8u);
  EXPECT_EQ(report.days_before_abort, 3u);
  // Every day after the abort deterministically predicts the penalty value.
  ASSERT_EQ(predicted.size(), 40u);
  for (std::size_t day = report.days_before_abort; day < 40; ++day) {
    EXPECT_DOUBLE_EQ(predicted[day], config.state_max) << "day " << day;
  }
}

TEST(SimulatorFaultTest, ClampSaturationWatchdogAborts) {
  const river::RiverDataset dataset = TinyDataset(40);
  river::SimulationConfig config;  // max_saturated_substeps = 64
  // Finite but explosive growth: the state pins at the ceiling every
  // substep without ever producing a non-finite derivative.
  const std::vector<e::ExprPtr> explosive{
      e::Mul(e::Constant(1e6), e::Variable(river::kBPhy, "B")),
      e::Constant(0.0)};
  river::SimulationReport report;
  const auto predicted =
      river::SimulateBPhy(explosive, ZeroParams(), dataset, 0, 40, 5.0, 1.0,
                          config, true, &report);
  EXPECT_EQ(report.outcome, EvalOutcome::kClampSaturated);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.clamp_saturations, 64u);
  EXPECT_EQ(report.substeps_used, 64u);  // 32 days, not 40
  // The aborted rollout and the clamp produce the same prediction, so the
  // full-horizon RMSE is unchanged — only the work is cut short.
  for (double p : predicted) EXPECT_DOUBLE_EQ(p, config.state_max);
}

TEST(SimulatorFaultTest, SubstepBudgetAborts) {
  const river::RiverDataset dataset = TinyDataset(20);
  river::SimulationConfig config;
  config.substep_budget = 10;  // 5 days at 2 substeps/day
  const std::vector<e::ExprPtr> benign{e::Constant(0.0), e::Constant(0.0)};
  river::SimulationReport report;
  const auto predicted =
      river::SimulateBPhy(benign, ZeroParams(), dataset, 0, 20, 5.0, 1.0,
                          config, true, &report);
  EXPECT_EQ(report.outcome, EvalOutcome::kBudgetExceeded);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.substeps_used, 10u);
  EXPECT_EQ(report.days_before_abort, 5u);
  for (std::size_t day = 0; day < 5; ++day) {
    EXPECT_DOUBLE_EQ(predicted[day], 5.0);
  }
  for (std::size_t day = 5; day < 20; ++day) {
    EXPECT_DOUBLE_EQ(predicted[day], config.state_max);
  }
}

TEST(SimulatorFaultTest, WatchdogsCanBeDisabled) {
  const river::RiverDataset dataset = TinyDataset(40);
  river::SimulationConfig config;
  config.max_nonfinite_derivatives = 0;
  config.max_saturated_substeps = 0;
  const std::vector<e::ExprPtr> divergent{
      e::Mul(e::Constant(1e308), e::Variable(river::kBPhy, "B")),
      e::Constant(0.0)};
  river::SimulationReport report;
  river::SimulateBPhy(divergent, ZeroParams(), dataset, 0, 40, 5.0, 1.0,
                      config, true, &report);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.outcome, EvalOutcome::kOk);
  EXPECT_EQ(report.substeps_used, 80u);  // full 40 days x 2
  EXPECT_GE(report.nonfinite_derivatives, 8u);  // counted, just not fatal
}

TEST(SimulatorFaultTest, DerivativeNanInjectionTripsWatchdog) {
  ScopedFault fault("derivative_nan:always");
  const river::RiverDataset dataset = TinyDataset(20);
  const std::vector<e::ExprPtr> benign{e::Constant(0.0), e::Constant(0.0)};
  river::SimulationReport report;
  river::SimulateBPhy(benign, ZeroParams(), dataset, 0, 20, 5.0, 1.0,
                      river::SimulationConfig{}, true, &report);
  EXPECT_EQ(report.outcome, EvalOutcome::kNonFiniteDerivative);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.nonfinite_derivatives, 8u);
}

TEST(SimulatorFaultTest, RiverEvaluationSurfacesOutcome) {
  const river::RiverDataset dataset = TinyDataset(40);
  const river::RiverFitness fitness = river::RiverFitness::ForTraining(
      &dataset, river::SimulationConfig{});
  const std::vector<e::ExprPtr> divergent{
      e::Mul(e::Constant(1e308), e::Variable(river::kBPhy, "B")),
      e::Constant(0.0)};
  auto eval = fitness.Begin(divergent, ZeroParams(), true);
  while (eval->Step()) {
  }
  EXPECT_EQ(eval->outcome(), EvalOutcome::kNonFiniteDerivative);
  EXPECT_TRUE(std::isfinite(eval->CurrentFitness()));
}

// ---------------------------------------------------------------- evaluator ----

// Same toy problem as gp_test/parallel_test: seed "x + 0", revisions
// "Exp* + R" and "Exp* * R", target concept 2x + 1.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

/// Linear-target fitness whose evaluation throws when parameters[0] is the
/// poison marker 13.0 — the injection vector for task-failure containment.
class ThrowableFitness : public gp::SequentialFitness {
 public:
  explicit ThrowableFitness(std::size_t n) : n_(n) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return 1; }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool /*use_compiled_backend*/) const override {
    class Eval : public gp::SequentialEvaluation {
     public:
      Eval(e::ExprPtr eq, bool poisoned, std::size_t n)
          : equation_(std::move(eq)), poisoned_(poisoned), n_(n) {}
      bool Step() override {
        if (poisoned_) throw std::runtime_error("poisoned candidate");
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        const double err = e::EvalExpr(*equation_, ctx) - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      bool poisoned_;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    const bool poisoned = !parameters.empty() && parameters[0] == 13.0;
    return std::make_unique<Eval>(equations[0], poisoned, n_);
  }

 private:
  std::size_t n_;
};

gp::Individual MakeIndividual(const t::Grammar& grammar, std::size_t target,
                              Rng& rng) {
  gp::Individual individual;
  individual.genotype = t::GrowRandom(grammar, 0, target, rng);
  individual.parameters = {1.0};
  return individual;
}

TEST(EvaluatorFaultTest, TaskFailurePoisonsOnlyItsOwnIndividual) {
  const t::Grammar grammar = ToyGrammar();
  const ThrowableFitness fitness(40);
  gp::SpeedupConfig config;
  config.tree_caching = true;
  config.short_circuiting = true;
  config.num_threads = 4;
  gp::FitnessEvaluator evaluator(&grammar, &fitness, config);
  ThreadPool pool(4);

  Rng rng(17);
  std::vector<gp::Individual> population;
  for (int i = 0; i < 12; ++i) {
    population.push_back(MakeIndividual(grammar, 3, rng));
  }
  population[2].parameters = {13.0};  // the poison marker

  std::vector<gp::Individual*> batch;
  for (gp::Individual& individual : population) batch.push_back(&individual);
  evaluator.EvaluateBatch(batch, &pool);

  EXPECT_DOUBLE_EQ(population[2].fitness, kPenaltyFitness);
  EXPECT_EQ(population[2].outcome, EvalOutcome::kTaskFailed);
  EXPECT_TRUE(population[2].fully_evaluated);
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(std::isfinite(population[i].fitness)) << "individual " << i;
    EXPECT_LT(population[i].fitness, kPenaltyFitness) << "individual " << i;
    EXPECT_EQ(population[i].outcome, EvalOutcome::kOk) << "individual " << i;
  }
  EXPECT_EQ(evaluator.stats().outcomes[static_cast<std::size_t>(
                EvalOutcome::kTaskFailed)],
            1u);
}

TEST(EvaluatorFaultTest, SerialEvaluateContainsThrow) {
  const t::Grammar grammar = ToyGrammar();
  const ThrowableFitness fitness(40);
  gp::FitnessEvaluator evaluator(&grammar, &fitness, gp::SpeedupConfig{});
  Rng rng(23);
  gp::Individual poisoned = MakeIndividual(grammar, 3, rng);
  poisoned.parameters = {13.0};
  evaluator.Evaluate(&poisoned);
  EXPECT_DOUBLE_EQ(poisoned.fitness, kPenaltyFitness);
  EXPECT_EQ(poisoned.outcome, EvalOutcome::kTaskFailed);
}

TEST(EvaluatorFaultTest, NonFiniteParameterIsDomainViolation) {
  const t::Grammar grammar = ToyGrammar();
  const ThrowableFitness fitness(40);
  gp::FitnessEvaluator evaluator(&grammar, &fitness, gp::SpeedupConfig{});
  Rng rng(29);
  gp::Individual individual = MakeIndividual(grammar, 3, rng);
  individual.parameters = {std::numeric_limits<double>::quiet_NaN()};
  evaluator.Evaluate(&individual);
  EXPECT_DOUBLE_EQ(individual.fitness, kPenaltyFitness);
  EXPECT_EQ(individual.outcome, EvalOutcome::kDomainViolation);
  EXPECT_EQ(evaluator.stats().outcomes[static_cast<std::size_t>(
                EvalOutcome::kDomainViolation)],
            1u);
}

TEST(EvalStatsFaultTest, MergeAddsOutcomeCounters) {
  gp::EvalStats a;
  a.outcomes[static_cast<std::size_t>(EvalOutcome::kOk)] = 3;
  a.outcomes[static_cast<std::size_t>(EvalOutcome::kTaskFailed)] = 1;
  gp::EvalStats b;
  b.outcomes[static_cast<std::size_t>(EvalOutcome::kOk)] = 7;
  b.outcomes[static_cast<std::size_t>(EvalOutcome::kClampSaturated)] = 2;
  a.Merge(b);
  EXPECT_EQ(a.outcomes[static_cast<std::size_t>(EvalOutcome::kOk)], 10u);
  EXPECT_EQ(a.outcomes[static_cast<std::size_t>(EvalOutcome::kTaskFailed)],
            1u);
  EXPECT_EQ(
      a.outcomes[static_cast<std::size_t>(EvalOutcome::kClampSaturated)], 2u);
}

// -------------------------------------------------------- JIT degradation ----

TEST(JitDegradationTest, Tag3pRunBitIdenticalUnderCompileFaults) {
  // The acceptance scenario: a full (small) TAG3P river run with every JIT
  // compile failing must silently degrade to the bytecode VM, trip the
  // circuit breaker exactly once, and produce a search history that is
  // bit-identical to a VM-backend run.
  core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const river::RiverDataset dataset = TinyDataset(40);

  const auto run = [&](river::CompiledBackend backend,
                       expr::JitCircuitBreaker* breaker) {
    river::SimulationConfig sim;
    sim.compiled_backend = backend;
    sim.jit_breaker = breaker;
    const river::RiverFitness fitness =
        river::RiverFitness::ForTraining(&dataset, sim);
    gp::Tag3pConfig config;
    config.population_size = 10;
    config.max_generations = 3;
    config.bounds = gp::SizeBounds{2, 12};
    config.local_search_steps = 1;
    config.elite_polish_steps = 2;
    config.seed = 7;
    config.seed_alpha_index = knowledge.seed_alpha_index;
    config.speedups.tree_caching = true;
    config.speedups.short_circuiting = true;
    config.speedups.runtime_compilation = true;
    gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                           config);
    return engine.Run();
  };

  const gp::Tag3pResult vm = run(river::CompiledBackend::kBytecodeVm, nullptr);

  expr::JitCircuitBreaker breaker;
  ScopedFault fault("jit_compile:always");
  const gp::Tag3pResult jit =
      run(river::CompiledBackend::kNativeJit, &breaker);

  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.disable_log_count(), 1);
  EXPECT_EQ(vm.best.fitness, jit.best.fitness);
  ASSERT_EQ(vm.history.size(), jit.history.size());
  for (std::size_t g = 0; g < vm.history.size(); ++g) {
    EXPECT_EQ(vm.history[g].best_fitness, jit.history[g].best_fitness)
        << "generation " << g;
    EXPECT_EQ(vm.history[g].mean_fitness, jit.history[g].mean_fitness)
        << "generation " << g;
  }
}

TEST(JitDegradationTest, SimulationReportsFallback) {
  ScopedFault fault("jit_compile:always");
  expr::JitCircuitBreaker breaker;
  const river::RiverDataset dataset = TinyDataset(10);
  river::SimulationConfig sim;
  sim.compiled_backend = river::CompiledBackend::kNativeJit;
  sim.jit_breaker = &breaker;
  const std::vector<e::ExprPtr> benign{e::Constant(0.1), e::Constant(0.0)};
  river::SimulationReport report;
  const auto with_fallback = river::SimulateBPhy(
      benign, ZeroParams(), dataset, 0, 10, 5.0, 1.0, sim, true, &report);
  EXPECT_TRUE(report.jit_fallback);
  EXPECT_EQ(report.outcome, EvalOutcome::kJitCompileFailed);
  // The VM fallback is bit-compatible with the plain VM backend.
  const auto vm = river::SimulateBPhy(benign, ZeroParams(), dataset, 0, 10,
                                      5.0, 1.0, river::SimulationConfig{},
                                      true);
  ASSERT_EQ(with_fallback.size(), vm.size());
  for (std::size_t i = 0; i < vm.size(); ++i) {
    EXPECT_EQ(with_fallback[i], vm[i]);
  }
}

}  // namespace
}  // namespace gmr
