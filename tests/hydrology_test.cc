// Focused hydrological-process properties (paper Appendix A, Eq. (9)):
// pulse travel times, retention smoothing, conservation-style invariants,
// and multi-branch topologies beyond the Nakdong fixture.

#include <gtest/gtest.h>

#include <cmath>

#include "river/network.h"

namespace gmr::river {
namespace {

HydrologicalProcess::Input MakeInput(std::size_t num_stations,
                                     std::size_t days) {
  HydrologicalProcess::Input input;
  input.attributes.resize(num_stations);
  input.rainfall.resize(num_stations);
  input.base_flow.assign(num_stations, 0.0);
  return input;
}

TEST(HydrologyPulseTest, RainPulseArrivesAfterTravelTime) {
  // A -> B with a 3-day travel time: a rain spike at A on day 5 must
  // raise B's flow on day 8, not earlier.
  RiverNetwork network;
  const int a = network.AddStation("A");
  const int b = network.AddStation("B");
  network.AddReach(a, b, /*travel_days=*/3, /*retention=*/0.0);

  const std::size_t days = 20;
  auto input = MakeInput(2, days);
  input.base_flow = {5.0, 5.0};
  for (std::size_t s = 0; s < 2; ++s) {
    input.attributes[s] = {std::vector<double>(days, 1.0)};
    input.rainfall[s] = std::vector<double>(days, 0.0);
  }
  // Pulse after the initialization transient has died out.
  input.rainfall[static_cast<std::size_t>(a)][12] = 100.0;

  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(input);
  const auto& flow_b = out.flow[static_cast<std::size_t>(b)];
  // Near-steady flow before arrival (travel time 3: arrival on day 15).
  EXPECT_NEAR(flow_b[14], flow_b[13], 0.01);
  // Clear spike on the arrival day, not before.
  EXPECT_GT(flow_b[15], flow_b[14] + 50.0);
}

TEST(HydrologyPulseTest, AttributePulseDilutesDownstream) {
  // A conductivity spike at the upstream station must appear downstream
  // delayed and attenuated (mixed with retained water).
  RiverNetwork network;
  const int a = network.AddStation("A");
  const int b = network.AddStation("B");
  network.AddReach(a, b, 1, /*retention=*/0.5);

  const std::size_t days = 30;
  auto input = MakeInput(2, days);
  input.base_flow = {10.0, 10.0};
  std::vector<double> attr_a(days, 100.0);
  for (std::size_t t = 10; t < 13; ++t) attr_a[t] = 500.0;  // spike
  input.attributes[static_cast<std::size_t>(a)] = {attr_a};
  input.attributes[static_cast<std::size_t>(b)] = {
      std::vector<double>(days, 100.0)};
  input.rainfall[static_cast<std::size_t>(a)] =
      std::vector<double>(days, 0.0);
  input.rainfall[static_cast<std::size_t>(b)] =
      std::vector<double>(days, 0.0);

  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(input);
  const auto& attr_b = out.attributes[static_cast<std::size_t>(b)][0];
  double peak = 0.0;
  for (std::size_t t = 0; t < days; ++t) peak = std::max(peak, attr_b[t]);
  EXPECT_GT(peak, 120.0);  // The spike reaches B...
  EXPECT_LT(peak, 500.0);  // ...attenuated by mixing.
  // Before the spike can arrive, B stays at baseline.
  EXPECT_NEAR(attr_b[9], 100.0, 1.0);
}

TEST(HydrologyPulseTest, FlowReachesSteadyStateUnderConstantInput) {
  RiverNetwork network;
  const int a = network.AddStation("A");
  const int b = network.AddStation("B");
  network.AddReach(a, b, 1, 0.4);
  const std::size_t days = 200;
  auto input = MakeInput(2, days);
  input.base_flow = {10.0, 4.0};
  for (std::size_t s = 0; s < 2; ++s) {
    input.attributes[s] = {std::vector<double>(days, 1.0)};
    input.rainfall[s] = std::vector<double>(days, 2.0);
  }
  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(input);
  // Geometric convergence: F_A* = (base+rain)/(1-r_A)... here retention of
  // A defaults to 0.3 (no inbound reach sets it) -> F_A* = 12/0.7.
  const double fa = out.flow[static_cast<std::size_t>(a)][days - 1];
  EXPECT_NEAR(fa, 12.0 / 0.7, 1e-6);
  EXPECT_NEAR(out.flow[static_cast<std::size_t>(a)][days - 2], fa, 1e-6);
  // B steady state: r_B F_B + (1-r_A) F_A* + 6 = F_B ->
  // F_B* = ((1-0.3)*F_A* + 6)/(1-0.4).
  const double fb_expected = (0.7 * fa + 6.0) / 0.6;
  EXPECT_NEAR(out.flow[static_cast<std::size_t>(b)][days - 1], fb_expected,
              1e-6);
}

TEST(HydrologyPulseTest, ThreeWayConfluenceWeighting) {
  // Three sources with flows 60/30/10 and attribute values 1/2/3: the
  // merge must converge to the flow-weighted mean 1.5... computed from
  // steady flows.
  RiverNetwork network;
  const int a = network.AddStation("A");
  const int b = network.AddStation("B");
  const int c = network.AddStation("C");
  const int join = network.AddStation("J", /*is_virtual=*/true);
  network.AddReach(a, join, 1, 0.0);
  network.AddReach(b, join, 1, 0.0);
  network.AddReach(c, join, 1, 0.0);
  const std::size_t days = 100;
  auto input = MakeInput(4, days);
  input.base_flow = {60.0, 30.0, 10.0, 0.0};
  const double values[] = {1.0, 2.0, 3.0};
  for (int s = 0; s < 3; ++s) {
    input.attributes[static_cast<std::size_t>(s)] = {
        std::vector<double>(days, values[s])};
    input.rainfall[static_cast<std::size_t>(s)] =
        std::vector<double>(days, 0.0);
  }
  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(input);
  // Source retention defaults to 0.3; steady flows scale all three sources
  // equally, so the weighted mean is (60*1 + 30*2 + 10*3)/100 = 1.5.
  EXPECT_NEAR(out.attributes[static_cast<std::size_t>(join)][0][days - 1],
              1.5, 1e-6);
}

TEST(HydrologyPulseTest, NakdongSinkBlendsAllStations) {
  // Give exactly one station a distinctive attribute value; the sink's mix
  // must move toward it but stay strictly between the two source values.
  const RiverNetwork network = RiverNetwork::Nakdong();
  const std::size_t days = 120;
  auto input = MakeInput(network.num_stations(), days);
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    if (network.station(static_cast<int>(s)).is_virtual) continue;
    const bool special = network.station(static_cast<int>(s)).name == "T2";
    input.attributes[s] = {
        std::vector<double>(days, special ? 10.0 : 1.0)};
    input.rainfall[s] = std::vector<double>(days, 1.0);
    input.base_flow[s] = 10.0;
  }
  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(input);
  const auto sink = static_cast<std::size_t>(network.Sink());
  const double mixed = out.attributes[sink][0][days - 1];
  EXPECT_GT(mixed, 1.0);
  EXPECT_LT(mixed, 10.0);
}

}  // namespace
}  // namespace gmr::river
