#include <gtest/gtest.h>

#include "gggp/gggp.h"
#include "river/biology.h"
#include "river/variables.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"

namespace gmr::gggp {
namespace {

namespace e = gmr::expr;
namespace r = gmr::river;

// ----------------------------------------------------------------- CFG ----

TEST(CfgTest, GrowRespectsDepthBound) {
  const CfgGrammar grammar = RiverCfgGrammar();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const e::ExprPtr tree = GrowRandomExpr(grammar, 4, rng);
    EXPECT_LE(tree->Height(), 4u);
  }
}

TEST(CfgTest, NodeAtVisitsPreorder) {
  // (x + 1) * p : preorder = [*, +, x, 1, p].
  const e::ExprPtr tree =
      e::Mul(e::Add(e::Variable(0, "x"), e::Constant(1.0)),
             e::Parameter(0, "p"));
  EXPECT_EQ(CountNodes(*tree), 5u);
  EXPECT_EQ(NodeAt(*tree, 0).kind(), e::NodeKind::kMul);
  EXPECT_EQ(NodeAt(*tree, 1).kind(), e::NodeKind::kAdd);
  EXPECT_EQ(NodeAt(*tree, 2).kind(), e::NodeKind::kVariable);
  EXPECT_EQ(NodeAt(*tree, 3).kind(), e::NodeKind::kConstant);
  EXPECT_EQ(NodeAt(*tree, 4).kind(), e::NodeKind::kParameter);
}

TEST(CfgTest, ReplaceNodeAtSwapsSubtree) {
  const e::ExprPtr tree =
      e::Mul(e::Add(e::Variable(0, "x"), e::Constant(1.0)),
             e::Parameter(0, "p"));
  const e::ExprPtr replaced = ReplaceNodeAt(tree, 1, e::Constant(7.0));
  EXPECT_EQ(CountNodes(*replaced), 3u);
  EXPECT_EQ(NodeAt(*replaced, 1).value(), 7.0);
  // Root replacement returns the replacement itself.
  const e::ExprPtr root_swap = ReplaceNodeAt(tree, 0, e::Constant(2.0));
  EXPECT_EQ(root_swap->value(), 2.0);
  // Original tree is untouched (persistent structure).
  EXPECT_EQ(CountNodes(*tree), 5u);
}

TEST(CfgTest, JitterConstantsOnlyTouchesLiterals) {
  const e::ExprPtr tree =
      e::Add(e::Mul(e::Constant(2.0), e::Variable(0, "x")),
             e::Parameter(0, "p"));
  Rng rng(5);
  const e::ExprPtr jittered = JitterConstants(tree, 1.0, rng);
  EXPECT_NE(NodeAt(*jittered, 2).value(), 2.0);
  EXPECT_EQ(NodeAt(*jittered, 4).kind(), e::NodeKind::kParameter);
  EXPECT_EQ(NodeAt(*jittered, 3).kind(), e::NodeKind::kVariable);
}

TEST(CfgTest, RiverGrammarListsAllSlots) {
  const CfgGrammar grammar = RiverCfgGrammar();
  EXPECT_EQ(grammar.variable_slots.size(),
            static_cast<std::size_t>(r::kNumVariables));
  EXPECT_EQ(grammar.parameter_slots.size(),
            static_cast<std::size_t>(r::kNumParameters));
  EXPECT_EQ(grammar.binary_ops.size(), 4u);
  EXPECT_EQ(grammar.unary_ops.size(), 2u);
}

// ---------------------------------------------------------------- GGGP ----

TEST(GggpTest, RevisionImprovesOnSeedFitness) {
  river::SyntheticConfig data_config;
  data_config.years = 2;
  data_config.train_years = 1;
  data_config.seed = 3;
  const river::RiverDataset dataset =
      river::GenerateNakdongLike(data_config);
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  GggpConfig config;
  config.population_size = 24;
  config.max_generations = 6;
  config.seed = 9;
  config.speedups.runtime_compilation = true;
  config.speedups.short_circuiting = true;
  const GggpResult result =
      RunGggp(r::ManualProcess(), RiverCfgGrammar(),
              r::RiverParameterPriors(), fitness, config);

  ASSERT_GE(result.best_fitness_history.size(), 2u);
  // Population index 0 is the unmodified seed, so generation-0 best is at
  // most the seed fitness and the final best must improve on it.
  EXPECT_LT(result.best.fitness, result.best_fitness_history.front() + 1e-9);
  EXPECT_GT(result.evaluations, 24u);
  ASSERT_EQ(result.best.equations.size(), 2u);
  for (const auto& eq : result.best.equations) {
    EXPECT_LE(eq->NodeCount(), config.max_equation_nodes);
  }
}

TEST(GggpTest, DeterministicForSameSeed) {
  river::SyntheticConfig data_config;
  data_config.years = 2;
  data_config.train_years = 1;
  data_config.seed = 3;
  const river::RiverDataset dataset =
      river::GenerateNakdongLike(data_config);
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  GggpConfig config;
  config.population_size = 10;
  config.max_generations = 3;
  config.seed = 4;
  const GggpResult a = RunGggp(r::ManualProcess(), RiverCfgGrammar(),
                               r::RiverParameterPriors(), fitness, config);
  const GggpResult b = RunGggp(r::ManualProcess(), RiverCfgGrammar(),
                               r::RiverParameterPriors(), fitness, config);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
}

}  // namespace
}  // namespace gmr::gggp
