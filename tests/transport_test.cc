// Multi-constituent transport tests (ctest labels `transport` + `prop`):
// the constituent registry's typed validation, the legacy two-species
// preset's 0-ULP differential oracle against the deprecated B_Phy entry
// points (interpreter / VM / batch backends), batch-vs-scalar agreement at
// five species, channel mass conservation under both advection schemes
// (including watchdog aborts), and a small end-to-end GMR revision of the
// five-species scenario with a checkpoint/resume round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/snapshot.h"
#include "core/gmr.h"
#include "core/transport_grammar.h"
#include "expr/ast.h"
#include "expr/print.h"
#include "gp/parameter_prior.h"
#include "obs/run_context.h"
#include "river/biology.h"
#include "river/chemistry.h"
#include "river/constituents.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/transport.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

namespace e = gmr::expr;
namespace fs = std::filesystem;

// ------------------------------------------------------------- helpers ----

RiverDataset SmallDataset() {
  SyntheticConfig config;
  config.years = 3;
  config.train_years = 2;
  config.seed = 7;
  return GenerateNakdongLike(config);
}

TransportScenario SmallScenario(int num_species) {
  SyntheticConfig config;
  config.years = 3;
  config.train_years = 2;
  config.seed = 21;
  return GenerateTransportScenario(config, num_species);
}

std::uint64_t Bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Exact bit equality of two trajectories — the 0-ULP oracle.
void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i])) << what << " diverges at day " << i
                                      << ": " << a[i] << " vs " << b[i];
  }
}

// -------------------------------------------------- registry validation ----

TEST(ConstituentSetTest, TypedValidationErrors) {
  ConstituentSet set;
  EXPECT_EQ(set.Validate().code, ConfigErrorCode::kEmptySet);

  EXPECT_EQ(set.Add({"", analysis::Dim::Concentration(), 1.0, 1.0, -1}).code,
            ConfigErrorCode::kEmptyName);
  ASSERT_TRUE(set.Add({"M_NO3", analysis::Dim::Concentration(), 2.0, 2.0, 0})
                  .ok());
  EXPECT_EQ(
      set.Add({"M_NO3", analysis::Dim::Concentration(), 1.0, 1.0, -1}).code,
      ConfigErrorCode::kDuplicateName);
  Constituent bad{"M_NH4", analysis::Dim::Concentration(),
                  std::nan(""), 1.0, -1};
  EXPECT_EQ(set.Add(bad).code, ConfigErrorCode::kBadInitialState);
  EXPECT_TRUE(set.Validate().ok());
}

TEST(ConstituentSetTest, SpeciesCountMismatchIsTyped) {
  const ConstituentSet set = ConstituentSet::Transport(5);
  SimulationConfig config;
  config.num_species = 2;  // Stale legacy default against a 5-species set.
  const auto equations = TransportProcess(set);
  const ConfigError err = ValidateSimulation(config, set, equations.size());
  EXPECT_EQ(err.code, ConfigErrorCode::kSpeciesCountMismatch);
  EXPECT_NE(err.message.find("num_species"), std::string::npos);

  config.num_species = 5;
  EXPECT_TRUE(ValidateSimulation(config, set, equations.size()).ok());
  // Equation count disagreeing with the registry is the same typed error.
  EXPECT_EQ(ValidateSimulation(config, set, 2).code,
            ConfigErrorCode::kSpeciesCountMismatch);
}

TEST(ConstituentSetTest, ObservationAndLaneValidation) {
  const RiverDataset dataset = SmallDataset();
  ConstituentSet set = ConstituentSet::Transport(2);
  EXPECT_TRUE(ValidateObservations(set, dataset).ok());
  set.mutable_at(0).observed_series = 7;  // No such series in the dataset.
  EXPECT_EQ(ValidateObservations(set, dataset).code,
            ConfigErrorCode::kBadObservedSeries);

  const std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_EQ(ValidateBatchLanes(ragged).code,
            ConfigErrorCode::kParameterLaneMismatch);
  EXPECT_TRUE(ValidateBatchLanes({{1.0, 2.0}, {3.0, 4.0}}).ok());
}

TEST(ConstituentSetTest, TransportRegistryLayout) {
  const ConstituentSet set = ConstituentSet::Transport(5);
  EXPECT_EQ(set.preset(), "transport5");
  ASSERT_EQ(set.size(), 5u);
  EXPECT_EQ(set.at(0).name, "M_NO3");
  EXPECT_EQ(set.at(4).name, "M_SED");
  EXPECT_EQ(set.num_variables(), 5u + kNumDriverVariables);
  // Drivers keep the legacy order after the states: V_lgt is first.
  EXPECT_EQ(set.driver_slot(0), 5);
  EXPECT_EQ(set.VariableNames()[5], VariableName(kVlgt));
  EXPECT_EQ(set.PrimaryObserved(), 0);
  const auto observed = set.ObservedConstituents();
  ASSERT_EQ(observed.size(), 2u);  // Nitrate + sediment.
  EXPECT_EQ(observed[0], 0);
  EXPECT_EQ(observed[1], 4);
  EXPECT_EQ(set.num_parameters(),
            static_cast<std::size_t>(kNumTransportParameters));
  EXPECT_EQ(set.parameter_dims().size(), set.num_parameters());

  // Truncated registries observe nitrate only and share the full parameter
  // table (slots stay stable across species counts).
  const ConstituentSet two = ConstituentSet::Transport(2);
  EXPECT_EQ(two.preset(), "transport2");
  EXPECT_EQ(two.ObservedConstituents().size(), 1u);
  EXPECT_EQ(two.num_parameters(), set.num_parameters());
  EXPECT_EQ(TransportProcess(two).size(), 2u);
}

TEST(ConstituentSetTest, LegacyPlanktonPinsHistoricalLayout) {
  const ConstituentSet legacy = ConstituentSet::LegacyPlankton();
  EXPECT_EQ(legacy.preset(), "plankton2");
  ASSERT_EQ(legacy.size(), 2u);
  EXPECT_EQ(legacy.at(0).name, "B_Phy");
  EXPECT_EQ(legacy.at(1).name, "B_Zoo");
  EXPECT_EQ(legacy.at(1).observed_series, -1);  // Zooplankton is latent.
  const auto names = legacy.VariableNames();
  ASSERT_EQ(names.size(), static_cast<std::size_t>(kNumVariables));
  for (int v = 0; v < kNumVariables; ++v) {
    EXPECT_EQ(names[static_cast<std::size_t>(v)], VariableName(v));
  }
}

// ----------------------------------- legacy 0-ULP differential oracle ----

TEST(LegacyPresetTest, SimulateMatchesDeprecatedBPhyEntryPoint) {
  const RiverDataset dataset = SmallDataset();
  const auto equations = ManualProcess();
  const auto parameters = gp::PriorMeans(RiverParameterPriors());
  const ConstituentSet legacy = ConstituentSet::LegacyPlankton(
      dataset.initial_bphy, dataset.initial_bzoo, dataset.test_initial_bphy,
      dataset.test_initial_bzoo);
  const std::vector<double> initial = {dataset.initial_bphy,
                                       dataset.initial_bzoo};

  struct Backend {
    const char* name;
    bool compiled;
    CompiledBackend backend;
  };
  const Backend backends[] = {
      {"interpreter", false, CompiledBackend::kBytecodeVm},
      {"bytecode-vm", true, CompiledBackend::kBytecodeVm},
      {"batch-vm", true, CompiledBackend::kBatchVm},
  };
  for (const Backend& b : backends) {
    SimulationConfig config;
    config.compiled_backend = b.backend;
    const std::vector<double> deprecated = SimulateBPhy(
        equations, parameters, dataset, 0, dataset.train_end,
        dataset.initial_bphy, dataset.initial_bzoo, config, b.compiled);
    const SimulationTrajectory generic =
        Simulate(equations, parameters, dataset, 0, dataset.train_end, legacy,
                 initial, config, b.compiled);
    ASSERT_EQ(generic.series.size(), 2u);
    ExpectBitIdentical(deprecated, generic.series[0], b.name);
  }
}

TEST(LegacyPresetTest, BatchSimulateMatchesDeprecatedBPhyEntryPoint) {
  const RiverDataset dataset = SmallDataset();
  const auto equations = ManualProcess();
  const auto means = gp::PriorMeans(RiverParameterPriors());
  std::vector<std::vector<double>> lanes = {means, means, means};
  for (std::size_t i = 0; i < lanes[1].size(); ++i) lanes[1][i] *= 1.1;
  for (std::size_t i = 0; i < lanes[2].size(); ++i) lanes[2][i] *= 0.9;

  const ConstituentSet legacy = ConstituentSet::LegacyPlankton(
      dataset.initial_bphy, dataset.initial_bzoo, dataset.test_initial_bphy,
      dataset.test_initial_bzoo);
  SimulationConfig config;
  config.compiled_backend = CompiledBackend::kBatchVm;
  const BatchSimulationResult deprecated =
      BatchSimulateBPhy(equations, lanes, dataset, 0, dataset.train_end,
                        dataset.initial_bphy, dataset.initial_bzoo, config);
  const BatchSimulationResult generic = BatchSimulate(
      equations, lanes, dataset, 0, dataset.train_end, legacy,
      {dataset.initial_bphy, dataset.initial_bzoo}, config);
  EXPECT_EQ(deprecated.num_species, 2u);
  EXPECT_EQ(generic.num_species, 2u);
  ASSERT_EQ(deprecated.predicted.size(), generic.predicted.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    ExpectBitIdentical(deprecated.predicted[lane], generic.predicted[lane],
                       "batch lane");
  }
}

TEST(LegacyPresetTest, AccuracyOverloadsAgreeBitwise) {
  const RiverDataset dataset = SmallDataset();
  const auto equations = ManualProcess();
  const auto parameters = gp::PriorMeans(RiverParameterPriors());
  const core::AccuracyReport legacy = core::EvaluateAccuracy(
      equations, parameters, dataset, SimulationConfig{});
  const core::AccuracyReport generic = core::EvaluateAccuracy(
      equations, parameters, dataset, SimulationConfig{},
      ConstituentSet::LegacyPlankton(dataset.initial_bphy, dataset.initial_bzoo,
                                     dataset.test_initial_bphy,
                                     dataset.test_initial_bzoo));
  EXPECT_EQ(Bits(legacy.train_rmse), Bits(generic.train_rmse));
  EXPECT_EQ(Bits(legacy.train_mae), Bits(generic.train_mae));
  EXPECT_EQ(Bits(legacy.test_rmse), Bits(generic.test_rmse));
  EXPECT_EQ(Bits(legacy.test_mae), Bits(generic.test_mae));
}

// --------------------------------------------- transport batch vs scalar ----

TEST(TransportSimulateTest, BatchMatchesScalarAtFiveSpecies) {
  const TransportScenario scenario = SmallScenario(5);
  const auto equations = TransportProcess(scenario.constituents);
  ASSERT_EQ(equations.size(), 5u);

  std::vector<std::vector<double>> lanes = {
      scenario.true_parameters,
      gp::PriorMeans(scenario.constituents.priors()),
      scenario.true_parameters};
  for (std::size_t i = 0; i < lanes[2].size(); ++i) lanes[2][i] *= 1.25;

  SimulationConfig config;
  config.num_species = 5;
  config.compiled_backend = CompiledBackend::kBatchVm;
  const std::vector<double> initial = scenario.constituents.InitialStates();
  const BatchSimulationResult batch = BatchSimulate(
      equations, lanes, scenario.dataset, 0, scenario.dataset.train_end,
      scenario.constituents, initial, config);
  EXPECT_EQ(batch.num_species, 5u);
  ASSERT_EQ(batch.predicted.size(), lanes.size());

  const int primary = scenario.constituents.PrimaryObserved();
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const SimulationTrajectory scalar = Simulate(
        equations, lanes[lane], scenario.dataset, 0,
        scenario.dataset.train_end, scenario.constituents, initial, config,
        /*compiled=*/true);
    ExpectBitIdentical(batch.predicted[lane],
                       scalar.series[static_cast<std::size_t>(primary)],
                       "transport lane");
  }
}

TEST(TransportSimulateTest, TruthParametersTrackNoisyObservations) {
  // The generator's hidden truth should sit well inside the clamp box and
  // produce a trajectory correlated with the observed nitrate series — the
  // signal the end-to-end revision recovers.
  const TransportScenario scenario = SmallScenario(5);
  const auto equations = TransportProcess(scenario.constituents);
  SimulationConfig config;
  config.num_species = 5;
  SimulationReport report;
  const SimulationTrajectory truth = Simulate(
      equations, scenario.true_parameters, scenario.dataset, 0,
      scenario.dataset.train_end, scenario.constituents,
      scenario.constituents.InitialStates(), config, /*compiled=*/true,
      &report);
  EXPECT_FALSE(report.aborted);
  for (const auto& series : truth.series) {
    for (double v : series) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_LT(v, config.state_max);
    }
  }
}

// ------------------------------------------------- channel conservation ----

/// |Residual| must vanish relative to the gross mass moved through the
/// budget — the telescoping identity of the discrete update.
void ExpectConserved(const ChannelMassBudget& budget, const char* what) {
  const double scale = std::fabs(budget.initial) + std::fabs(budget.inflow) +
                       std::fabs(budget.outflow) +
                       std::fabs(budget.reaction) +
                       std::fabs(budget.clamp_correction) + 1.0;
  EXPECT_LE(std::fabs(budget.Residual()), 1e-8 * scale) << what;
}

TEST(ChannelConservationTest, BothSchemesConserveMass) {
  const TransportScenario scenario = SmallScenario(5);
  const auto equations = TransportProcess(scenario.constituents);
  SimulationConfig config;
  config.num_species = 5;

  for (AdvectionScheme scheme :
       {AdvectionScheme::kUpwind, AdvectionScheme::kQuick}) {
    ChannelConfig channel;
    channel.scheme = scheme;
    channel.num_cells = 6;
    ASSERT_TRUE(ValidateChannel(channel, scenario.constituents).ok());
    // Explicit stepping must be inside the stability region.
    ASSERT_LT(channel.Courant(config.substeps), 1.0);

    const ChannelResult result = SimulateChannel(
        equations, scenario.true_parameters, scenario.dataset, 0, 120,
        scenario.constituents, config, channel);
    EXPECT_FALSE(result.report.aborted) << AdvectionSchemeName(scheme);
    ASSERT_EQ(result.budgets.size(), 5u);
    ASSERT_EQ(result.outlet.size(), 5u);
    EXPECT_EQ(result.final_state.num_species(), 5u);
    EXPECT_EQ(result.final_state.width(),
              static_cast<std::size_t>(channel.num_cells));
    for (std::size_t s = 0; s < result.budgets.size(); ++s) {
      ExpectConserved(result.budgets[s], AdvectionSchemeName(scheme));
    }
    for (const auto& series : result.outlet) {
      for (double v : series) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(ChannelConservationTest, BudgetStaysExactAcrossWatchdogAbort) {
  // A deliberately explosive process: d/dt = exp(8 * M_NO3) saturates the
  // clamp within a few days and trips the watchdog. The reach aborts as a
  // unit; the committed-substep budget must still telescope exactly.
  const TransportScenario scenario = SmallScenario(1);
  const std::vector<e::ExprPtr> explosive = {
      e::Exp(e::Mul(e::Constant(8.0), e::Variable(0, "M_NO3")))};
  SimulationConfig config;
  config.num_species = 1;
  config.max_saturated_substeps = 4;

  for (AdvectionScheme scheme :
       {AdvectionScheme::kUpwind, AdvectionScheme::kQuick}) {
    ChannelConfig channel;
    channel.scheme = scheme;
    channel.num_cells = 4;
    const ChannelResult result = SimulateChannel(
        explosive, scenario.true_parameters, scenario.dataset, 0, 60,
        scenario.constituents, config, channel);
    EXPECT_TRUE(result.report.aborted) << AdvectionSchemeName(scheme);
    EXPECT_EQ(result.report.outcome, EvalOutcome::kClampSaturated);
    ASSERT_EQ(result.budgets.size(), 1u);
    ExpectConserved(result.budgets[0], AdvectionSchemeName(scheme));
    // Post-abort outlet samples deterministically predict the penalty.
    ASSERT_FALSE(result.outlet[0].empty());
    EXPECT_EQ(result.outlet[0].back(), config.state_max);
  }
}

TEST(ChannelConservationTest, GeometryValidationIsTyped) {
  const ConstituentSet set = ConstituentSet::Transport(2);
  ChannelConfig channel;
  channel.num_cells = 0;
  EXPECT_FALSE(ValidateChannel(channel, set).ok());
  channel.num_cells = 4;
  channel.velocity = -1.0;
  EXPECT_FALSE(ValidateChannel(channel, set).ok());
  channel.velocity = 100.0;
  channel.inflow = {1.0};  // Wrong length for a two-species registry.
  EXPECT_EQ(ValidateChannel(channel, set).code,
            ConfigErrorCode::kSpeciesCountMismatch);
  channel.inflow = {1.0, 0.5};
  EXPECT_TRUE(ValidateChannel(channel, set).ok());
}

// ------------------------------------------------------- fitness widths ----

TEST(TransportFitnessTest, StateAndParameterWidthsFollowRegistry) {
  const TransportScenario scenario = SmallScenario(5);
  const RiverFitness fitness = RiverFitness::ForTrainingWith(
      &scenario.dataset, scenario.constituents);
  EXPECT_EQ(fitness.num_states(), 5u);
  EXPECT_EQ(fitness.num_parameters(),
            static_cast<std::size_t>(kNumTransportParameters));
  EXPECT_EQ(fitness.num_cases(), scenario.dataset.train_end);

  const RiverDataset dataset = SmallDataset();
  const RiverFitness legacy = RiverFitness::ForTraining(&dataset);
  EXPECT_EQ(legacy.num_states(), 2u);
}

// --------------------------------------------- end-to-end GMR + resume ----

core::GmrConfig TinyGmrConfig() {
  core::GmrConfig config;
  config.tag3p.population_size = 12;
  config.tag3p.max_generations = 3;
  config.tag3p.local_search_steps = 1;
  config.tag3p.sigma_rampdown_generations = 2;
  config.tag3p.seed = 33;
  return config;
}

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/transport_test_" + name;
  std::error_code ignore;
  fs::remove_all(path, ignore);
  fs::create_directories(path);
  return path;
}

/// DescribeModel text + bitwise accuracy: a complete digest of one run.
std::string Digest(const core::GmrRunResult& result,
                   const ConstituentSet& constituents) {
  std::string digest = core::DescribeModel(result.best_equations,
                                           constituents);
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "\ntrain=%llx test=%llx",
                static_cast<unsigned long long>(Bits(result.train_rmse)),
                static_cast<unsigned long long>(Bits(result.test_rmse)));
  return digest + buffer;
}

TEST(TransportEndToEndTest, FiveSpeciesGmrRunsAndResumesIdentically) {
  const TransportScenario scenario = SmallScenario(5);
  const core::RiverPriorKnowledge knowledge =
      core::BuildTransportPriorKnowledge(scenario.constituents);
  EXPECT_EQ(knowledge.priors.size(),
            static_cast<std::size_t>(kNumTransportParameters));

  const core::GmrConfig config = TinyGmrConfig();
  const core::GmrProblem problem{&scenario.dataset, &knowledge,
                                 &scenario.constituents};
  const std::string dir = FreshDir("resume5");

  auto run_segment = [&] {
    ckpt::CheckpointOptions options;
    options.dir = dir;
    options.every_steps = 1;
    options.retain = 64;
    ckpt::Checkpointer checkpointer(options);
    obs::RunContext context;
    context.checkpointer = &checkpointer;
    return core::RunGmr(config, problem, context);
  };

  const core::GmrRunResult full = run_segment();
  ASSERT_EQ(full.best_equations.size(), 5u);
  EXPECT_TRUE(std::isfinite(full.train_rmse));
  EXPECT_TRUE(std::isfinite(full.test_rmse));
  const std::string description =
      core::DescribeModel(full.best_equations, scenario.constituents);
  EXPECT_NE(description.find("dM_NO3/dt"), std::string::npos);
  EXPECT_NE(description.find("dM_SED/dt"), std::string::npos);

  // Rewind the snapshot store to a mid-run step, as if the process had
  // been killed there, and rerun: the continuation must reproduce the
  // uninterrupted result bit-identically.
  {
    ckpt::SnapshotStore store(dir, /*retain=*/64);
    ASSERT_GE(store.entries().size(), 2u);
    const std::uint64_t mid =
        store.entries()[(store.entries().size() - 1) / 2].step;
    ASSERT_TRUE(store.DropNewerThan(mid).ok());
  }
  const core::GmrRunResult resumed = run_segment();
  EXPECT_EQ(Digest(full, scenario.constituents),
            Digest(resumed, scenario.constituents));
}

}  // namespace
}  // namespace gmr::river
