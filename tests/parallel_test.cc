// Concurrency layer tests: ThreadPool, StripedMap, EvalStats merging, the
// cached fully_evaluated bit, and thread-count determinism of the TAG3P
// engine under kFrozenFrontier. Labeled `tsan` in ctest — run them under
// GMR_SANITIZE=thread to check for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/striped_map.h"
#include "common/thread_pool.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "gp/evaluator.h"
#include "gp/tag3p.h"
#include "tag/generate.h"

namespace gmr::gp {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;

// Same toy problem as gp_test: seed "x + 0", revisions "Exp* + R" and
// "Exp* * R", target concept 2x + 1.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

class ToyFitness : public SequentialFitness {
 public:
  explicit ToyFitness(std::size_t n) : n_(n) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return 0; }

  std::unique_ptr<SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public SequentialEvaluation {
     public:
      Eval(const e::ExprPtr& eq, std::vector<double> params, bool compiled,
           std::size_t n)
          : equation_(eq), params_(std::move(params)), n_(n) {
        if (compiled) program_ = e::Compile(*equation_);
        compiled_ = compiled;
      }
      bool Step() override {
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        ctx.parameters = params_.data();
        ctx.num_parameters = params_.size();
        const double pred = compiled_ ? program_.Run(ctx)
                                      : e::EvalExpr(*equation_, ctx);
        const double err = pred - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      std::vector<double> params_;
      e::CompiledProgram program_;
      bool compiled_ = false;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    return std::make_unique<Eval>(equations[0], parameters,
                                  use_compiled_backend, n_);
  }

 private:
  std::size_t n_;
};

Individual MakeIndividual(const t::Grammar& grammar, std::size_t target,
                          Rng& rng) {
  Individual individual;
  individual.genotype = t::GrowRandom(grammar, 0, target, rng);
  return individual;
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&counts](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    const std::size_t n = static_cast<std::size_t>(batch % 7);
    pool.ParallelFor(n, [&total](std::size_t, int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::size_t expected = 0;
  for (int batch = 0; batch < 50; ++batch) {
    expected += static_cast<std::size_t>(batch % 7);
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolTest, FreeHelperRunsInlineWithoutPool) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline: deterministic order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));

  ThreadPool single(1);
  order.clear();
  ParallelFor(&single, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NestedDataParallelSum) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1'000;
  std::vector<double> values(kN);
  pool.ParallelFor(kN, [&values](std::size_t i, int) {
    values[i] = static_cast<double>(i);
  });
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN * (kN - 1)) / 2.0);
}

// ----------------------------------------------------------- striped map ----

TEST(StripedMapTest, InsertAndLookup) {
  StripedMap<std::uint64_t, double> map(8);
  EXPECT_EQ(map.num_stripes(), 8u);
  EXPECT_EQ(map.size(), 0u);
  map.Insert(42, 1.5);
  map.Insert(42, 9.9);  // insert-if-absent: first value wins
  double value = 0.0;
  EXPECT_TRUE(map.Lookup(42, &value));
  EXPECT_DOUBLE_EQ(value, 1.5);
  EXPECT_FALSE(map.Lookup(43, &value));
  EXPECT_EQ(map.size(), 1u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Lookup(42, &value));
}

TEST(StripedMapTest, ConcurrentInsertLookupStress) {
  // 8 threads hammer a shared map with overlapping keys; values are a pure
  // function of the key, so whoever wins an insert race stores the same
  // value every reader must see.
  StripedMap<std::uint64_t, std::uint64_t> map(16);
  ThreadPool pool(8);
  constexpr std::size_t kOps = 20'000;
  constexpr std::uint64_t kKeySpace = 500;
  std::atomic<std::size_t> mismatches{0};
  pool.ParallelFor(kOps, [&map, &mismatches](std::size_t i, int) {
    const std::uint64_t key = static_cast<std::uint64_t>(i) % kKeySpace;
    const std::uint64_t expected = key * 2654435761ULL + 1;
    std::uint64_t value = 0;
    if (map.Lookup(key, &value)) {
      if (value != expected) mismatches.fetch_add(1);
    }
    map.Insert(key, expected);
    if (!map.Lookup(key, &value) || value != expected) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(map.size(), kKeySpace);
}

// ------------------------------------------------------------ eval stats ----

TEST(EvalStatsTest, MergeAddsEveryCounter) {
  EvalStats a;
  a.individuals_evaluated = 1;
  a.cache_hits = 2;
  a.cache_lookups = 3;
  a.full_evaluations = 4;
  a.short_circuited = 5;
  a.time_steps_evaluated = 6;
  a.wall_seconds = 0.5;
  a.cpu_seconds = 1.0;
  EvalStats b;
  b.individuals_evaluated = 10;
  b.cache_hits = 20;
  b.cache_lookups = 30;
  b.full_evaluations = 40;
  b.short_circuited = 50;
  b.time_steps_evaluated = 60;
  b.wall_seconds = 0.25;
  b.cpu_seconds = 0.5;
  a.Merge(b);
  EXPECT_EQ(a.individuals_evaluated, 11u);
  EXPECT_EQ(a.cache_hits, 22u);
  EXPECT_EQ(a.cache_lookups, 33u);
  EXPECT_EQ(a.full_evaluations, 44u);
  EXPECT_EQ(a.short_circuited, 55u);
  EXPECT_EQ(a.time_steps_evaluated, 66u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 1.5);
  a.Merge(EvalStats{});
  EXPECT_EQ(a.cache_hits, 22u);
}

// ------------------------------------------------- cached evaluation bit ----

TEST(EvaluatorTest, CacheHitRestoresStoredFullyEvaluatedBit) {
  // Regression: the bit must be stored with the cached fitness, not
  // re-derived from the current frontier. Evaluate `worse` first (full
  // evaluation — no frontier yet), then `better` (full, advances the
  // frontier past `worse`). A cache hit on a clone of `worse` must still
  // report fully_evaluated = true even though its fitness now sits above
  // the frontier.
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(200);
  SpeedupConfig config;
  config.tree_caching = true;
  config.short_circuiting = true;
  FitnessEvaluator evaluator(&grammar, &fitness, config);
  Rng rng(7);

  Individual worse = MakeIndividual(grammar, 2, rng);
  evaluator.Evaluate(&worse);
  ASSERT_TRUE(worse.fully_evaluated);

  // Find a structurally different individual with strictly better fitness.
  Individual better;
  for (int attempt = 0; attempt < 200; ++attempt) {
    Individual candidate = MakeIndividual(grammar, 4, rng);
    const double full = evaluator.EvaluateFull(candidate);
    if (full < worse.fitness) {
      better = std::move(candidate);
      break;
    }
  }
  ASSERT_TRUE(better.genotype != nullptr) << "no better candidate found";
  evaluator.Evaluate(&better);
  ASSERT_TRUE(better.fully_evaluated);
  ASSERT_LT(evaluator.best_prev_full(), worse.fitness);

  Individual again = worse.Clone();
  again.fitness = std::numeric_limits<double>::infinity();
  evaluator.Evaluate(&again);
  EXPECT_DOUBLE_EQ(again.fitness, worse.fitness);
  EXPECT_TRUE(again.fully_evaluated);

  // And the converse: a short-circuited result must stay marked partial on
  // a cache hit.
  Individual bad = worse.Clone();
  ASSERT_FALSE(bad.genotype->children.empty());
  bad.genotype->children[0].node->lexemes.assign(
      bad.genotype->children[0].node->lexemes.size(), 1e6);
  evaluator.Evaluate(&bad);
  ASSERT_FALSE(bad.fully_evaluated);
  Individual bad_again = bad.Clone();
  bad_again.fitness = std::numeric_limits<double>::infinity();
  evaluator.Evaluate(&bad_again);
  EXPECT_DOUBLE_EQ(bad_again.fitness, bad.fitness);
  EXPECT_FALSE(bad_again.fully_evaluated);
}

// --------------------------------------------------------- batch parity ----

TEST(EvaluatorTest, ParallelBatchMatchesSerialUnderFrozenFrontier) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(120);
  SpeedupConfig config;
  config.tree_caching = true;
  config.short_circuiting = true;
  config.num_threads = 4;

  Rng rng(29);
  std::vector<Individual> originals;
  for (int i = 0; i < 40; ++i) {
    originals.push_back(
        MakeIndividual(grammar, 2 + static_cast<std::size_t>(i % 6), rng));
  }

  auto run = [&](ThreadPool* pool) {
    FitnessEvaluator evaluator(&grammar, &fitness, config);
    std::vector<Individual> population;
    for (const Individual& o : originals) population.push_back(o.Clone());
    std::vector<Individual*> batch;
    for (Individual& individual : population) batch.push_back(&individual);
    evaluator.EvaluateBatch(batch, pool);
    std::vector<double> fitnesses;
    for (const Individual& individual : population) {
      fitnesses.push_back(individual.fitness);
    }
    return fitnesses;
  };

  ThreadPool pool(4);
  const std::vector<double> serial = run(nullptr);
  const std::vector<double> parallel = run(&pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "individual " << i;
  }
}

TEST(EvaluatorTest, BatchStatsFoldAcrossLanes) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  SpeedupConfig config;
  config.tree_caching = true;
  config.num_threads = 4;
  FitnessEvaluator evaluator(&grammar, &fitness, config);
  ThreadPool pool(4);

  Rng rng(31);
  std::vector<Individual> population;
  for (int i = 0; i < 30; ++i) {
    population.push_back(MakeIndividual(grammar, 3, rng));
  }
  std::vector<Individual*> batch;
  for (Individual& individual : population) batch.push_back(&individual);
  evaluator.EvaluateBatch(batch, &pool);

  const EvalStats& stats = evaluator.stats();
  EXPECT_EQ(stats.cache_lookups, 30u);
  EXPECT_EQ(stats.individuals_evaluated + stats.cache_hits, 30u);
  EXPECT_EQ(evaluator.cache_size(), stats.individuals_evaluated);
}

// ----------------------------------------------------------- determinism ----

Tag3pResult RunToyEngine(int num_threads, FrontierMode mode,
                         const t::Grammar& grammar,
                         const ToyFitness& fitness) {
  Tag3pConfig config;
  config.population_size = 24;
  config.max_generations = 8;
  config.bounds = SizeBounds{2, 12};
  config.local_search_steps = 2;
  config.elite_polish_steps = 5;
  config.sigma_rampdown_generations = 3;
  config.seed = 5;
  config.speedups.tree_caching = true;
  config.speedups.short_circuiting = true;
  config.speedups.num_threads = num_threads;
  config.speedups.frontier_mode = mode;
  Tag3pEngine engine(&grammar, &fitness, {}, config);
  return engine.Run();
}

TEST(Tag3pParallelTest, FrozenFrontierBitIdenticalAcrossThreadCounts) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const Tag3pResult one =
      RunToyEngine(1, FrontierMode::kFrozenFrontier, grammar, fitness);
  for (int threads : {4, 8}) {
    const Tag3pResult many =
        RunToyEngine(threads, FrontierMode::kFrozenFrontier, grammar, fitness);
    EXPECT_EQ(one.best.fitness, many.best.fitness)
        << threads << " threads: best fitness diverged";
    ASSERT_EQ(one.history.size(), many.history.size());
    for (std::size_t g = 0; g < one.history.size(); ++g) {
      // `seconds` is wall clock and legitimately differs; everything else
      // must match bit for bit.
      EXPECT_EQ(one.history[g].best_fitness, many.history[g].best_fitness)
          << threads << " threads, generation " << g;
      EXPECT_EQ(one.history[g].mean_fitness, many.history[g].mean_fitness)
          << threads << " threads, generation " << g;
      EXPECT_EQ(one.history[g].best_size, many.history[g].best_size)
          << threads << " threads, generation " << g;
    }
  }
}

TEST(Tag3pParallelTest, SharedFrontierStillConvergesAndImproves) {
  // kShared results are interleaving-dependent, so only sanity properties
  // hold: the search runs, improves on the seed, and history is monotone
  // under elitism.
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const Tag3pResult result =
      RunToyEngine(4, FrontierMode::kShared, grammar, fitness);
  ASSERT_FALSE(result.history.empty());
  EXPECT_TRUE(std::isfinite(result.best.fitness));
  EXPECT_LE(result.history.back().best_fitness,
            result.history.front().best_fitness);
}

}  // namespace
}  // namespace gmr::gp
