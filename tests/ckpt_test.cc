// Checkpoint/resume subsystem tests (ctest labels `ckpt` + `fault`): the
// bit-exact serialization codecs, the CRC-sealed snapshot format and
// manifest hash chain, retention and rewind, the Checkpointer service, the
// four ckpt fault-injection sites (graceful degradation, previous-snapshot
// fallback, operational events), trace continuation with no gap across the
// checkpoint boundary, and in-process resume bit-identity for every
// checkpointing driver (TAG3P, GGGP, GA, SCE-UA, DREAM). The SIGKILL crash
// drill binary (gmr_crashdrill) covers the real-process half of the same
// contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calibrate/methods.h"
#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "ckpt/snapshot.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "gggp/gggp.h"
#include "gp/evaluator.h"
#include "gp/tag3p.h"
#include "obs/run_context.h"
#include "obs/telemetry.h"
#include "obs/trace_reader.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "tag/derivation.h"
#include "tag/generate.h"

namespace gmr::ckpt {
namespace {

namespace e = gmr::expr;
namespace fs = std::filesystem;
namespace t = gmr::tag;

// ------------------------------------------------------------- helpers ----

/// A fresh empty scratch directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/ckpt_test_" + name;
  std::error_code ignore;
  fs::remove_all(path, ignore);
  fs::create_directories(path);
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fast-failing retry ladder so always-firing faults do not slow tests.
RetryOptions FastRetry() {
  RetryOptions retry;
  retry.initial_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;
  return retry;
}

CheckpointOptions Options(const std::string& dir, int retain = 64) {
  CheckpointOptions options;
  options.dir = dir;
  options.every_steps = 1;
  options.retain = retain;
  options.retry = FastRetry();
  return options;
}

Snapshot MakeTestSnapshot(const std::string& driver, std::uint64_t step) {
  Snapshot snapshot;
  snapshot.driver = driver;
  snapshot.step = step;
  Section* payload = snapshot.AddSection("payload");
  payload->lines = {"value " + HexDouble(static_cast<double>(step)),
                    "tag line-two"};
  return snapshot;
}

std::size_t CountEvents(const obs::VectorSink& sink, const std::string& type,
                        const std::string& action) {
  std::size_t count = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.type != type) continue;
    for (const auto& [key, value] : event.labels) {
      if (key == "action" && value == action) ++count;
    }
  }
  return count;
}

// ----------------------------------------------------- serialize codecs ----

TEST(SerializeTest, HexDoubleRoundTripsExactBits) {
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -1.5,
                           1.0 / 3.0,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::nan("0x7ff")};
  for (const double value : values) {
    const std::string hex = HexDouble(value);
    EXPECT_EQ(hex.size(), 16u);
    double parsed = 0.0;
    ASSERT_TRUE(ParseHexDouble(hex, &parsed)) << hex;
    EXPECT_EQ(HexDouble(parsed), hex);  // bitwise, incl. NaN payload & -0.0
  }
  double parsed;
  EXPECT_FALSE(ParseHexDouble("abc", &parsed));
  EXPECT_FALSE(ParseHexDouble("zzzzzzzzzzzzzzzz", &parsed));
  EXPECT_FALSE(ParseHexDouble("", &parsed));
}

TEST(SerializeTest, EscapeTokenRoundTrips) {
  const std::string names[] = {"plain", "a b", "x(y)", "100%", "p%20q",
                               "tab\tnewline\n", "Aa0_.-"};
  for (const std::string& name : names) {
    const std::string token = EscapeToken(name);
    EXPECT_EQ(token.find(' '), std::string::npos) << token;
    EXPECT_EQ(token.find('('), std::string::npos) << token;
    EXPECT_EQ(UnescapeToken(token), name);
  }
}

TEST(SerializeTest, ExprLineIsExactStructuralFixpoint) {
  // The pretty printer is structurally lossy (-1.5 reparses as Neg(1.5));
  // the checkpoint codec must not be: NodeCount feeds resumed RNG picks.
  const e::ExprPtr tree =
      e::Add(e::Constant(-1.5),
             e::Mul(e::Neg(e::Constant(1.5)), e::Variable(0, "x")));
  const std::string line = SerializeExpr(*tree);
  std::string error;
  const e::ExprPtr parsed = ParseExprLine(line, &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->NodeCount(), tree->NodeCount());
  EXPECT_EQ(SerializeExpr(*parsed), line);

  const double x = 0.75;
  e::EvalContext ctx;
  ctx.variables = &x;
  ctx.num_variables = 1;
  EXPECT_EQ(HexDouble(e::EvalExpr(*parsed, ctx)),
            HexDouble(e::EvalExpr(*tree, ctx)));
}

TEST(SerializeTest, ParseExprLineRejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(ParseExprLine("", &error), nullptr);
  EXPECT_EQ(ParseExprLine("(c", &error), nullptr);
  EXPECT_EQ(ParseExprLine("(c nothex)", &error), nullptr);
  EXPECT_EQ(ParseExprLine("(q 3ff0000000000000)", &error), nullptr);
  // Trailing garbage after a well-formed tree is an error, not ignored.
  const std::string good = SerializeExpr(*e::Constant(1.0));
  EXPECT_NE(ParseExprLine(good, &error), nullptr);
  EXPECT_EQ(ParseExprLine(good + " (c 0000000000000000)", &error), nullptr);
}

TEST(SerializeTest, RngStateRoundTripContinuesStreamExactly) {
  Rng rng(1234);
  for (int i = 0; i < 17; ++i) rng.NextUint64();
  rng.Gaussian();  // leaves a cached Box-Muller mate pending

  RngState state = rng.SaveState();
  const std::string line = SerializeRngState(state);
  RngState parsed;
  ASSERT_TRUE(ParseRngState(line, &parsed));
  Rng restored(1);
  restored.RestoreState(parsed);

  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(HexDouble(restored.Gaussian()), HexDouble(rng.Gaussian()));
    EXPECT_EQ(restored.NextUint64(), rng.NextUint64());
  }
  RngState bad;
  EXPECT_FALSE(ParseRngState("not an rng state", &bad));
  EXPECT_FALSE(ParseRngState("", &bad));
}

TEST(SerializeTest, DoublesRoundTripBitExactly) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0 / 3.0, 5e-324, -std::numeric_limits<double>::infinity(),
      std::nan("")};
  const std::string line = SerializeDoubles(values);
  std::vector<double> parsed;
  ASSERT_TRUE(ParseDoubles(line, &parsed));
  ASSERT_EQ(parsed.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(HexDouble(parsed[i]), HexDouble(values[i])) << i;
  }
  EXPECT_EQ(SerializeDoubles(parsed), line);

  std::vector<double> empty_parsed;
  ASSERT_TRUE(ParseDoubles(SerializeDoubles({}), &empty_parsed));
  EXPECT_TRUE(empty_parsed.empty());
  // Declared count must match the payload.
  EXPECT_FALSE(ParseDoubles("2 3ff0000000000000", &parsed));
}

// Same toy problem as obs_test/gp_test: seed "x + 0", revisions "Exp* + R"
// and "Exp* * R", target concept 2x + 1.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

TEST(SerializeTest, DerivationLineIsExactFixpoint) {
  const t::Grammar grammar = ToyGrammar();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const t::DerivationPtr derivation =
        t::GrowRandom(grammar, /*alpha_index=*/0, /*target_size=*/6, rng);
    ASSERT_NE(derivation, nullptr);
    const std::string line = SerializeDerivation(*derivation);
    std::string error;
    const t::DerivationPtr parsed = ParseDerivationLine(line, &error);
    ASSERT_NE(parsed, nullptr) << error;
    EXPECT_TRUE(t::Validate(grammar, *parsed, &error)) << error;
    EXPECT_EQ(SerializeDerivation(*parsed), line);

    const auto original = t::ExpandToExpressions(grammar, *derivation);
    const auto reparsed = t::ExpandToExpressions(grammar, *parsed);
    ASSERT_EQ(original.size(), reparsed.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(SerializeExpr(*reparsed[i]), SerializeExpr(*original[i]));
    }
  }
}

// ----------------------------------------------------- snapshot format ----

TEST(SnapshotTest, EncodeDecodeRoundTrips) {
  Snapshot snapshot = MakeTestSnapshot("tag3p", 42);
  snapshot.AddSection("empty");
  const std::string bytes = EncodeSnapshot(snapshot);

  Snapshot decoded;
  const Status status = DecodeSnapshot(bytes, &decoded);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(decoded.driver, "tag3p");
  EXPECT_EQ(decoded.step, 42u);
  ASSERT_NE(decoded.FindSection("payload"), nullptr);
  EXPECT_EQ(decoded.FindSection("payload")->lines,
            snapshot.FindSection("payload")->lines);
  ASSERT_NE(decoded.FindSection("empty"), nullptr);
  EXPECT_TRUE(decoded.FindSection("empty")->lines.empty());
  EXPECT_EQ(decoded.FindSection("absent"), nullptr);
  EXPECT_EQ(EncodeSnapshot(decoded), bytes);
}

TEST(SnapshotTest, DecodeRejectsCorruptionAndTruncation) {
  const std::string bytes = EncodeSnapshot(MakeTestSnapshot("d", 7));
  Snapshot decoded;
  EXPECT_FALSE(DecodeSnapshot("", &decoded).ok());

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;  // single bit-rotted payload byte
  EXPECT_FALSE(DecodeSnapshot(flipped, &decoded).ok());

  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(DecodeSnapshot(truncated, &decoded).ok());

  // Stripping the crc seal entirely must also fail.
  const std::size_t crc_start = bytes.rfind("crc ");
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, crc_start), &decoded).ok());
}

TEST(SnapshotStoreTest, SaveLoadRoundTripsNewestFirst) {
  const std::string dir = FreshDir("store_roundtrip");
  SnapshotStore store(dir, /*retain=*/4);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.Save(MakeTestSnapshot("d", 0), FastRetry()).ok());
  ASSERT_TRUE(store.Save(MakeTestSnapshot("d", 1), FastRetry()).ok());

  Snapshot loaded;
  int fallbacks = -1;
  ASSERT_TRUE(store.LoadLatest(&loaded, &fallbacks).ok());
  EXPECT_EQ(loaded.step, 1u);
  EXPECT_EQ(fallbacks, 0);

  // A fresh store instance reads the same chain back from disk.
  SnapshotStore reopened(dir);
  ASSERT_EQ(reopened.entries().size(), 2u);
  EXPECT_EQ(reopened.entries()[0].step, 0u);
  EXPECT_EQ(reopened.entries()[1].step, 1u);
}

TEST(SnapshotStoreTest, RetentionPrunesOldestSnapshots) {
  const std::string dir = FreshDir("store_retention");
  SnapshotStore store(dir, /*retain=*/3);
  for (std::uint64_t step = 0; step < 5; ++step) {
    ASSERT_TRUE(store.Save(MakeTestSnapshot("d", step), FastRetry()).ok());
  }
  ASSERT_EQ(store.entries().size(), 3u);
  EXPECT_EQ(store.entries().front().step, 2u);
  EXPECT_EQ(store.entries().back().step, 4u);

  // The pruned files are really gone: MANIFEST + 3 snapshots remain.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 4u);
}

TEST(SnapshotStoreTest, ManifestChainAcceptsOnlyTheValidPrefix) {
  const std::string dir = FreshDir("store_chain");
  {
    SnapshotStore store(dir, 8);
    for (std::uint64_t step = 0; step < 3; ++step) {
      ASSERT_TRUE(store.Save(MakeTestSnapshot("d", step), FastRetry()).ok());
    }
  }
  // Tamper with the last manifest record (step field): its chain value no
  // longer verifies, so a fresh store must accept only the first two.
  const std::string manifest_path = dir + "/MANIFEST";
  std::string manifest = ReadFile(manifest_path);
  const std::size_t last_line = manifest.rfind("snap ");
  ASSERT_NE(last_line, std::string::npos);
  manifest[last_line + 7] = '9';  // "snap <seq> <step>..." -> bogus step
  std::ofstream(manifest_path, std::ios::binary) << manifest;

  SnapshotStore reopened(dir);
  ASSERT_EQ(reopened.entries().size(), 2u);
  Snapshot loaded;
  ASSERT_TRUE(reopened.LoadLatest(&loaded).ok());
  EXPECT_EQ(loaded.step, 1u);
}

TEST(SnapshotStoreTest, DropNewerThanRewindsTheChain) {
  const std::string dir = FreshDir("store_rewind");
  SnapshotStore store(dir, 16);
  for (std::uint64_t step = 0; step < 6; ++step) {
    ASSERT_TRUE(store.Save(MakeTestSnapshot("d", step), FastRetry()).ok());
  }
  ASSERT_TRUE(store.DropNewerThan(2).ok());
  ASSERT_EQ(store.entries().size(), 3u);
  EXPECT_EQ(store.entries().back().step, 2u);

  // The rewritten manifest chain is valid and the newer files are deleted.
  SnapshotStore reopened(dir, 16);
  ASSERT_EQ(reopened.entries().size(), 3u);
  Snapshot loaded;
  ASSERT_TRUE(reopened.LoadLatest(&loaded).ok());
  EXPECT_EQ(loaded.step, 2u);
  // Saving after a rewind continues the chain cleanly.
  ASSERT_TRUE(reopened.Save(MakeTestSnapshot("d", 3), FastRetry()).ok());
  SnapshotStore again(dir, 16);
  EXPECT_EQ(again.entries().size(), 4u);
}

TEST(SnapshotStoreTest, TornTmpFilesAreSweptOnOpen) {
  const std::string dir = FreshDir("store_tmp_sweep");
  std::ofstream(dir + "/snap-00000009.gmrck.tmp") << "torn half-write";
  SnapshotStore store(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(fs::exists(dir + "/snap-00000009.gmrck.tmp"));
}

// --------------------------------------------------------- checkpointer ----

TEST(CheckpointerTest, ShouldSnapshotFollowsCadence) {
  CheckpointOptions options = Options(FreshDir("cadence"));
  options.every_steps = 3;
  Checkpointer every3(options);
  EXPECT_TRUE(every3.ShouldSnapshot(0));
  EXPECT_FALSE(every3.ShouldSnapshot(1));
  EXPECT_TRUE(every3.ShouldSnapshot(3));

  options.every_steps = 0;  // 0 behaves as 1
  Checkpointer every0(options);
  EXPECT_TRUE(every0.ShouldSnapshot(0));
  EXPECT_TRUE(every0.ShouldSnapshot(1));
}

TEST(CheckpointerTest, MakeFingerprintSortsEntries) {
  const std::vector<std::string> lines =
      MakeFingerprint({{"seed", "5"}, {"alpha", "x"}, {"pop", "24"}});
  const std::vector<std::string> expected = {"alpha x", "pop 24", "seed 5"};
  EXPECT_EQ(lines, expected);
}

TEST(CheckpointerTest, ResumeForChecksDriverAndFingerprint) {
  const std::string dir = FreshDir("resume_for");
  const std::vector<std::string> fingerprint =
      MakeFingerprint({{"seed", "5"}});
  {
    Checkpointer writer(Options(dir));
    Snapshot snapshot = MakeTestSnapshot("tag3p", 3);
    snapshot.AddSection("fingerprint")->lines = fingerprint;
    ASSERT_TRUE(writer.Save(std::move(snapshot)));
  }
  obs::VectorSink events;
  Checkpointer reader(Options(dir), &events);
  EXPECT_EQ(reader.ResumeFor("gggp", fingerprint), nullptr);
  EXPECT_EQ(CountEvents(events, "ckpt", "driver_mismatch"), 1u);
  EXPECT_EQ(reader.ResumeFor("tag3p", MakeFingerprint({{"seed", "6"}})),
            nullptr);
  EXPECT_EQ(CountEvents(events, "ckpt", "fingerprint_mismatch"), 1u);

  const Snapshot* resumed = reader.ResumeFor("tag3p", fingerprint);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->step, 3u);
  // Idempotent on the repeated identical query: same answer, one event.
  EXPECT_EQ(reader.ResumeFor("tag3p", fingerprint), resumed);
  EXPECT_EQ(CountEvents(events, "ckpt", "resume"), 1u);
}

TEST(CheckpointerTest, ResumedTraceSinkLeavesNoGapAcrossTheKillPoint) {
  // Satellite contract: a trace interrupted after the checkpoint and then
  // resumed must be byte-identical to one written by an uninterrupted run —
  // no gap before the checkpoint, no duplicate after it.
  const std::string dir = FreshDir("trace_nogap");
  const std::string interrupted_path = dir + "/interrupted.jsonl";
  const std::string reference_path = dir + "/reference.jsonl";

  auto emit = [](obs::JsonlTraceSink* sink, int index) {
    obs::TraceEvent event("step");
    event.Field("index", static_cast<double>(index));
    sink->Emit(std::move(event));
  };

  // Reference: all five events in one uninterrupted sink.
  {
    obs::JsonlTraceSink sink(reference_path,
                             obs::JsonlTraceOptions::Deterministic());
    for (int i = 0; i < 5; ++i) emit(&sink, i);
  }

  // Interrupted: checkpoint after event 2, then two post-checkpoint events
  // that a crash would lose (or half-write); the resumed sink must discard
  // them and re-emit.
  {
    Checkpointer checkpointer(Options(dir + "/ck"));
    obs::JsonlTraceSink sink(interrupted_path,
                             obs::JsonlTraceOptions::Deterministic());
    checkpointer.AttachTraceSink(&sink);
    for (int i = 0; i < 3; ++i) emit(&sink, i);
    ASSERT_TRUE(checkpointer.Save(MakeTestSnapshot("d", 0)));
    for (int i = 3; i < 5; ++i) emit(&sink, i);
  }
  {
    Checkpointer checkpointer(Options(dir + "/ck"));
    ASSERT_NE(checkpointer.Load(), nullptr);
    EXPECT_GT(checkpointer.resume_trace_bytes(), 0u);
    EXPECT_EQ(checkpointer.resume_trace_sequence(), 3u);
    obs::JsonlTraceOptions options = obs::JsonlTraceOptions::Deterministic();
    options.resume = true;
    options.resume_bytes = checkpointer.resume_trace_bytes();
    options.resume_sequence = checkpointer.resume_trace_sequence();
    obs::JsonlTraceSink sink(interrupted_path, options);
    ASSERT_TRUE(sink.ok());
    for (int i = 3; i < 5; ++i) emit(&sink, i);
  }

  const std::string interrupted = ReadFile(interrupted_path);
  EXPECT_FALSE(interrupted.empty());
  EXPECT_EQ(interrupted, ReadFile(reference_path));
}

// ------------------------------------------------- fault-site matrix -------

class CkptFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearFaults(); }
};

TEST_F(CkptFaultTest, WriteFaultFailsSaveGracefully) {
  const std::string dir = FreshDir("fault_write");
  obs::VectorSink events;
  Checkpointer checkpointer(Options(dir), &events);
  ASSERT_TRUE(checkpointer.Save(MakeTestSnapshot("d", 0)));

  ASSERT_TRUE(SetFaultSpec("ckpt_write:always"));
  EXPECT_FALSE(checkpointer.Save(MakeTestSnapshot("d", 1)));
  EXPECT_EQ(checkpointer.saves_attempted(), 2u);
  EXPECT_EQ(checkpointer.saves_failed(), 1u);
  EXPECT_EQ(CountEvents(events, "ckpt", "save_error"), 1u);
  ClearFaults();

  // The store degrades, never wedges: the next cadence point succeeds and
  // a reader sees the chain {0, 2} with the newest loadable.
  EXPECT_TRUE(checkpointer.Save(MakeTestSnapshot("d", 2)));
  Checkpointer reader(Options(dir));
  ASSERT_NE(reader.Load(), nullptr);
  EXPECT_EQ(reader.Load()->step, 2u);
}

TEST_F(CkptFaultTest, RetryMasksATransientWriteFault) {
  const std::string dir = FreshDir("fault_write_once");
  obs::VectorSink events;
  Checkpointer checkpointer(Options(dir), &events);
  ASSERT_TRUE(SetFaultSpec("ckpt_write:once"));
  EXPECT_TRUE(checkpointer.Save(MakeTestSnapshot("d", 0)));
  EXPECT_EQ(checkpointer.saves_failed(), 0u);
  EXPECT_EQ(CountEvents(events, "ckpt", "save_error"), 0u);
  EXPECT_EQ(CountEvents(events, "ckpt", "save"), 1u);
}

TEST_F(CkptFaultTest, FsyncFaultFailsSaveAndLeavesNoTmpFile) {
  const std::string dir = FreshDir("fault_fsync");
  obs::VectorSink events;
  Checkpointer checkpointer(Options(dir), &events);
  ASSERT_TRUE(SetFaultSpec("ckpt_fsync:always"));
  EXPECT_FALSE(checkpointer.Save(MakeTestSnapshot("d", 0)));
  EXPECT_EQ(checkpointer.saves_failed(), 1u);
  EXPECT_EQ(CountEvents(events, "ckpt", "save_error"), 1u);
  ClearFaults();

  // A non-durable write never leaves a half-written file behind.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_TRUE(checkpointer.Save(MakeTestSnapshot("d", 1)));
}

TEST_F(CkptFaultTest, CorruptSnapshotFallsBackToThePreviousOne) {
  const std::string dir = FreshDir("fault_corrupt");
  {
    Checkpointer writer(Options(dir));
    ASSERT_TRUE(writer.Save(MakeTestSnapshot("d", 0)));
    ASSERT_TRUE(SetFaultSpec("ckpt_corrupt:once"));
    // The save itself succeeds; the file is bit-rotted after the fact.
    ASSERT_TRUE(writer.Save(MakeTestSnapshot("d", 1)));
    ClearFaults();
  }
  obs::VectorSink events;
  Checkpointer reader(Options(dir), &events);
  const Snapshot* snapshot = reader.Load();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->step, 0u);  // newest (step 1) failed its CRC
  EXPECT_EQ(CountEvents(events, "ckpt", "load_fallback"), 1u);
}

TEST_F(CkptFaultTest, TornResumeReadFallsBackThenStartsFresh) {
  const std::string dir = FreshDir("fault_torn");
  {
    Checkpointer writer(Options(dir));
    ASSERT_TRUE(writer.Save(MakeTestSnapshot("d", 0)));
    ASSERT_TRUE(writer.Save(MakeTestSnapshot("d", 1)));
  }
  // One torn read: the newest snapshot is skipped, its predecessor loads.
  {
    ASSERT_TRUE(SetFaultSpec("resume_torn:once"));
    obs::VectorSink events;
    Checkpointer reader(Options(dir), &events);
    const Snapshot* snapshot = reader.Load();
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->step, 0u);
    EXPECT_EQ(CountEvents(events, "ckpt", "load_fallback"), 1u);
    ClearFaults();
  }
  // Every read torn: Load degrades to "no snapshot" (the driver starts
  // fresh) instead of crashing the run.
  {
    ASSERT_TRUE(SetFaultSpec("resume_torn:always"));
    obs::VectorSink events;
    Checkpointer reader(Options(dir), &events);
    EXPECT_EQ(reader.Load(), nullptr);
    EXPECT_EQ(reader.ResumeFor("d", {}), nullptr);
    EXPECT_EQ(CountEvents(events, "ckpt", "load_failed"), 1u);
  }
}

// ------------------------------------------- resume bit-identity: TAG3P ----

class ToyFitness : public gp::SequentialFitness {
 public:
  explicit ToyFitness(std::size_t n) : n_(n) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return 0; }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public gp::SequentialEvaluation {
     public:
      Eval(const e::ExprPtr& eq, std::vector<double> params, bool compiled,
           std::size_t n)
          : equation_(eq), params_(std::move(params)), n_(n) {
        if (compiled) program_ = e::Compile(*equation_);
        compiled_ = compiled;
      }
      bool Step() override {
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        ctx.parameters = params_.data();
        ctx.num_parameters = params_.size();
        const double pred = compiled_ ? program_.Run(ctx)
                                      : e::EvalExpr(*equation_, ctx);
        const double err = pred - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      std::vector<double> params_;
      e::CompiledProgram program_;
      bool compiled_ = false;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    return std::make_unique<Eval>(equations[0], parameters,
                                  use_compiled_backend, n_);
  }

 private:
  std::size_t n_;
};

gp::Tag3pConfig ToyTagConfig() {
  gp::Tag3pConfig config;
  config.population_size = 24;
  config.max_generations = 6;
  config.bounds = gp::SizeBounds{2, 12};
  config.local_search_steps = 2;
  config.elite_polish_steps = 5;
  config.sigma_rampdown_generations = 3;
  config.seed = 5;
  // Byte-identical traces need TC off when threaded (DESIGN.md §4f); these
  // tests run serially, so caching stays on to exercise its serialization.
  config.speedups.tree_caching = true;
  config.speedups.short_circuiting = true;
  config.speedups.frontier_mode = gp::FrontierMode::kFrozenFrontier;
  config.speedups.num_threads = 1;
  return config;
}

void AppendEvalStatsDigest(const gp::EvalStats& stats, std::ostringstream* out) {
  // Deterministic counters only — wall/cpu/compile seconds are real time.
  *out << "evaluated " << stats.individuals_evaluated << " hits "
       << stats.cache_hits << " lookups " << stats.cache_lookups << " full "
       << stats.full_evaluations << " short " << stats.short_circuited
       << " rejects " << stats.static_rejects << " steps "
       << stats.time_steps_evaluated << "\n";
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    *out << "outcome " << i << " " << stats.outcomes[i] << "\n";
  }
}

std::string DigestTag3p(const gp::Tag3pResult& result) {
  std::ostringstream out;
  out << "best " << HexDouble(result.best.fitness) << "\n"
      << SerializeDoubles(result.best.parameters) << "\n";
  if (result.best.genotype != nullptr) {
    out << SerializeDerivation(*result.best.genotype) << "\n";
  }
  for (const gp::GenerationStats& g : result.history) {
    out << g.generation << " " << HexDouble(g.best_fitness) << " "
        << HexDouble(g.mean_fitness) << " " << HexDouble(g.best_size) << "\n";
  }
  AppendEvalStatsDigest(result.eval_stats, &out);
  return out.str();
}

/// Rewinds a finished checkpoint directory to a mid-run step, as if the
/// process had been killed there; returns the step resumed runs land on.
std::uint64_t RewindStoreToMiddle(const std::string& dir) {
  SnapshotStore store(dir, /*retain=*/64);
  EXPECT_GE(store.entries().size(), 3u);
  if (store.entries().size() < 3u) return 0;
  const std::uint64_t last = store.entries().back().step;
  const std::uint64_t mid =
      store.entries()[(store.entries().size() - 1) / 2].step;
  EXPECT_LT(mid, last);
  EXPECT_TRUE(store.DropNewerThan(mid).ok());
  return mid;
}

struct DriverRun {
  std::string trace;
  std::string digest;
  bool resumed = false;
  std::uint64_t resumed_step = 0;
};

/// One TAG3P segment against the toy problem: opens (or resumes) the trace
/// and checkpoint state in `dir`, runs to completion, and returns the final
/// trace bytes + result digest.
DriverRun RunToyTag3p(const std::string& dir) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  DriverRun run;
  const std::string trace_path = dir + "/trace.jsonl";
  {
    Checkpointer checkpointer(Options(dir + "/ck"));
    if (const Snapshot* snapshot = checkpointer.Load()) {
      run.resumed = true;
      run.resumed_step = snapshot->step;
    }
    obs::JsonlTraceOptions options = obs::JsonlTraceOptions::Deterministic();
    options.resume = true;
    options.resume_bytes = checkpointer.resume_trace_bytes();
    options.resume_sequence = checkpointer.resume_trace_sequence();
    obs::JsonlTraceSink sink(trace_path, options);
    EXPECT_TRUE(sink.ok());
    checkpointer.AttachTraceSink(&sink);

    obs::RunContext context;
    context.sink = &sink;
    context.checkpointer = &checkpointer;
    run.digest = DigestTag3p(gp::RunTag3p(ToyTagConfig(), problem, context));
  }  // sink destructor drains before the file is read back
  run.trace = ReadFile(trace_path);
  return run;
}

TEST(ResumeBitIdentityTest, Tag3pContinuesByteIdentically) {
  const std::string dir = FreshDir("resume_tag3p");
  const DriverRun full = RunToyTag3p(dir);
  EXPECT_FALSE(full.resumed);
  ASSERT_FALSE(full.trace.empty());

  const std::uint64_t mid = RewindStoreToMiddle(dir + "/ck");
  const DriverRun resumed = RunToyTag3p(dir);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_step, mid);
  EXPECT_EQ(resumed.trace, full.trace);
  EXPECT_EQ(resumed.digest, full.digest);
}

TEST(ResumeBitIdentityTest, EvalStatsSurviveResumeAndTimersAccumulate) {
  const std::string dir = FreshDir("resume_stats") + "/ck";
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  auto run_segment = [&](std::map<int, gp::EvalStats>* per_generation) {
    Checkpointer checkpointer(Options(dir));
    obs::RunContext context;
    context.checkpointer = &checkpointer;
    gp::Tag3pEngine engine(problem, ToyTagConfig(), context);
    engine.set_generation_callback([&](const gp::GenerationStats& g) {
      (*per_generation)[g.generation] = engine.evaluator().stats();
    });
    return engine.Run();
  };

  std::map<int, gp::EvalStats> full_gens;
  const gp::Tag3pResult full = run_segment(&full_gens);
  const int mid = static_cast<int>(RewindStoreToMiddle(dir));
  std::map<int, gp::EvalStats> resumed_gens;
  const gp::Tag3pResult resumed = run_segment(&resumed_gens);

  // The resumed segment replays only the generations after the checkpoint.
  EXPECT_EQ(resumed_gens.count(mid), 0u);
  ASSERT_GT(resumed_gens.count(mid + 1), 0u);

  // Deterministic counters continue exactly where the first segment left
  // them: every post-resume generation matches the uninterrupted run.
  for (const auto& [generation, stats] : resumed_gens) {
    ASSERT_GT(full_gens.count(generation), 0u);
    std::ostringstream a;
    std::ostringstream b;
    AppendEvalStatsDigest(full_gens[generation], &a);
    AppendEvalStatsDigest(stats, &b);
    EXPECT_EQ(b.str(), a.str()) << "generation " << generation;
  }

  // Timers restore as a floor and accumulate: the first resumed generation
  // already carries at least the first segment's recorded wall/cpu time.
  const gp::EvalStats& at_checkpoint = full_gens[mid];
  const gp::EvalStats& first_resumed = resumed_gens[mid + 1];
  EXPECT_GT(at_checkpoint.wall_seconds, 0.0);
  EXPECT_GE(first_resumed.wall_seconds, at_checkpoint.wall_seconds);
  EXPECT_GE(first_resumed.cpu_seconds, at_checkpoint.cpu_seconds);
  EXPECT_GE(first_resumed.compile_seconds, at_checkpoint.compile_seconds);
  EXPECT_GE(resumed.eval_stats.wall_seconds, at_checkpoint.wall_seconds);

  std::ostringstream a;
  std::ostringstream b;
  AppendEvalStatsDigest(full.eval_stats, &a);
  AppendEvalStatsDigest(resumed.eval_stats, &b);
  EXPECT_EQ(b.str(), a.str());
  EXPECT_EQ(HexDouble(resumed.best.fitness), HexDouble(full.best.fitness));
}

TEST_F(CkptFaultTest, Tag3pSearchIsUnperturbedByPersistentWriteFaults) {
  // Checkpointing must never take a run down or change what it computes: a
  // run whose every snapshot write fails finishes with exactly the result
  // of a run that never checkpointed at all.
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};
  const std::string baseline =
      DigestTag3p(gp::RunTag3p(ToyTagConfig(), problem));

  ASSERT_TRUE(SetFaultSpec("ckpt_write:always"));
  obs::VectorSink events;
  Checkpointer checkpointer(Options(FreshDir("fault_run")), &events);
  obs::RunContext context;
  context.checkpointer = &checkpointer;
  const std::string faulted =
      DigestTag3p(gp::RunTag3p(ToyTagConfig(), problem, context));
  ClearFaults();

  EXPECT_EQ(faulted, baseline);
  EXPECT_GT(checkpointer.saves_attempted(), 0u);
  EXPECT_EQ(checkpointer.saves_failed(), checkpointer.saves_attempted());
  EXPECT_EQ(CountEvents(events, "ckpt", "save_error"),
            checkpointer.saves_failed());
}

// -------------------------------------------- resume bit-identity: GGGP ----

std::string DigestGggp(const gggp::GggpResult& result) {
  std::ostringstream out;
  out << "best " << HexDouble(result.best.fitness) << "\n"
      << SerializeDoubles(result.best.parameters) << "\n";
  for (const auto& equation : result.best.equations) {
    out << SerializeExpr(*equation) << "\n";
  }
  out << SerializeDoubles(result.best_fitness_history) << "\n"
      << "evaluations " << result.evaluations << "\n";
  return out.str();
}

DriverRun RunToyGggp(const std::string& dir,
                     const river::RiverDataset& dataset) {
  const river::RiverFitness fitness = river::RiverFitness::ForTraining(&dataset);
  const gggp::CfgGrammar grammar = gggp::RiverCfgGrammar();
  const gp::ParameterPriors priors = river::RiverParameterPriors();
  gggp::GggpProblem problem;
  problem.seed_equations = river::ManualProcess();
  problem.grammar = &grammar;
  problem.priors = &priors;
  problem.fitness = &fitness;

  gggp::GggpConfig config;
  config.population_size = 12;
  config.max_generations = 5;
  config.grow_depth = 3;
  config.seed = 9;
  config.speedups.short_circuiting = true;

  DriverRun run;
  const std::string trace_path = dir + "/trace.jsonl";
  {
    Checkpointer checkpointer(Options(dir + "/ck"));
    if (const Snapshot* snapshot = checkpointer.Load()) {
      run.resumed = true;
      run.resumed_step = snapshot->step;
    }
    obs::JsonlTraceOptions options = obs::JsonlTraceOptions::Deterministic();
    options.resume = true;
    options.resume_bytes = checkpointer.resume_trace_bytes();
    options.resume_sequence = checkpointer.resume_trace_sequence();
    obs::JsonlTraceSink sink(trace_path, options);
    EXPECT_TRUE(sink.ok());
    checkpointer.AttachTraceSink(&sink);

    obs::RunContext context;
    context.sink = &sink;
    context.checkpointer = &checkpointer;
    run.digest = DigestGggp(gggp::RunGggp(config, problem, context));
  }
  run.trace = ReadFile(trace_path);
  return run;
}

TEST(ResumeBitIdentityTest, GggpContinuesByteIdentically) {
  river::SyntheticConfig data_config;
  data_config.years = 2;
  data_config.train_years = 1;
  data_config.seed = 3;
  const river::RiverDataset dataset = river::GenerateNakdongLike(data_config);

  const std::string dir = FreshDir("resume_gggp");
  const DriverRun full = RunToyGggp(dir, dataset);
  EXPECT_FALSE(full.resumed);
  ASSERT_FALSE(full.trace.empty());

  const std::uint64_t mid = RewindStoreToMiddle(dir + "/ck");
  const DriverRun resumed = RunToyGggp(dir, dataset);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_step, mid);
  EXPECT_EQ(resumed.trace, full.trace);
  EXPECT_EQ(resumed.digest, full.digest);
}

// ------------------------------------- resume bit-identity: calibrators ----

/// Shifted sphere in 4 dimensions (same shape as calibrate_test).
struct SphereProblem {
  calibrate::BoxBounds bounds;
  std::vector<double> optimum = {0.7, 0.25, 13.0, -2.5};
  std::vector<double> initial = {-1.0, 0.9, 19.0, 4.0};

  SphereProblem() {
    bounds.lo = {-2.0, 0.0, 10.0, -5.0};
    bounds.hi = {2.0, 1.0, 20.0, 5.0};
  }

  calibrate::Objective MakeObjective() const {
    const std::vector<double> target = optimum;
    return [target](const std::vector<double>& x) {
      double sum = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - target[i];
        sum += d * d;
      }
      return sum;
    };
  }
};

std::string DigestCalibration(const calibrate::CalibrationResult& result) {
  std::ostringstream out;
  out << "best " << HexDouble(result.best_objective) << "\n"
      << SerializeDoubles(result.best_parameters) << "\n"
      << "evaluations " << result.evaluations << " failed "
      << result.failed_evaluations << "\n";
  return out.str();
}

DriverRun RunSphereCalibration(const calibrate::Calibrator& method,
                               const std::string& dir) {
  const SphereProblem sphere;
  calibrate::CalibrationConfig config;
  config.budget = 400;
  config.seed = 33;
  calibrate::CalibrationProblem problem;
  problem.objective = sphere.MakeObjective();
  problem.bounds = sphere.bounds;
  problem.initial = sphere.initial;

  DriverRun run;
  const std::string trace_path = dir + "/trace.jsonl";
  {
    Checkpointer checkpointer(Options(dir + "/ck"));
    if (const Snapshot* snapshot = checkpointer.Load()) {
      run.resumed = true;
      run.resumed_step = snapshot->step;
    }
    obs::JsonlTraceOptions options = obs::JsonlTraceOptions::Deterministic();
    options.resume = true;
    options.resume_bytes = checkpointer.resume_trace_bytes();
    options.resume_sequence = checkpointer.resume_trace_sequence();
    obs::JsonlTraceSink sink(trace_path, options);
    EXPECT_TRUE(sink.ok());
    checkpointer.AttachTraceSink(&sink);

    obs::RunContext context;
    context.sink = &sink;
    context.checkpointer = &checkpointer;
    run.digest =
        DigestCalibration(calibrate::Run(method, config, problem, context));
  }
  run.trace = ReadFile(trace_path);
  return run;
}

void ExpectCalibratorResumesBitIdentically(
    const calibrate::Calibrator& method, const std::string& dir_name) {
  const std::string dir = FreshDir(dir_name);
  const DriverRun full = RunSphereCalibration(method, dir);
  EXPECT_FALSE(full.resumed);
  ASSERT_FALSE(full.trace.empty());

  const std::uint64_t mid = RewindStoreToMiddle(dir + "/ck");
  const DriverRun resumed = RunSphereCalibration(method, dir);
  EXPECT_TRUE(resumed.resumed) << method.name();
  EXPECT_EQ(resumed.resumed_step, mid) << method.name();
  EXPECT_EQ(resumed.trace, full.trace) << method.name();
  EXPECT_EQ(resumed.digest, full.digest) << method.name();
}

TEST(ResumeBitIdentityTest, GaContinuesByteIdentically) {
  ExpectCalibratorResumesBitIdentically(calibrate::GaCalibrator{},
                                        "resume_ga");
}

TEST(ResumeBitIdentityTest, SceUaContinuesByteIdentically) {
  ExpectCalibratorResumesBitIdentically(calibrate::SceUaCalibrator{},
                                        "resume_sce_ua");
}

TEST(ResumeBitIdentityTest, DreamContinuesByteIdentically) {
  ExpectCalibratorResumesBitIdentically(calibrate::DreamCalibrator{},
                                        "resume_dream");
}

}  // namespace
}  // namespace gmr::ckpt
