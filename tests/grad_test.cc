// Reverse-mode autodiff tests (ctest labels `grad` + `fault`): hand-derived
// adjoints of every protected primitive at its clamp/band boundaries,
// bitwise (0 ULP) forward agreement between the tape and the tree
// interpreter, the discrete-adjoint rollout against central finite
// differences under Euler and RK4 for both the legacy plankton preset and a
// transport ConstituentSet registry, the exact-zero gradient guarantee for
// activity-pruned parameters, watchdog-abort penalty gradients (finite and
// zero, never NaN), the `tape_alloc`/`adjoint_nan` fault sites with the
// L-BFGS degrade-to-derivative-free path, and bit-identical L-BFGS resume
// through the checkpoint store.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/activity.h"
#include "analysis/interval.h"
#include "calibrate/calibrator.h"
#include "calibrate/methods.h"
#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "ckpt/snapshot.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "expr/ast.h"
#include "expr/eval.h"
#include "grad/adjoint.h"
#include "grad/tape.h"
#include "obs/run_context.h"
#include "obs/telemetry.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"
#include "river/variables.h"

namespace gmr::grad {
namespace {

namespace e = gmr::expr;
namespace r = gmr::river;
namespace an = gmr::analysis;
namespace fs = std::filesystem;

// ------------------------------------------------------------- helpers ----

/// Forward + reverse sweep of one expression; adjoints seeded with 1.0.
struct TapeEval {
  double value = 0.0;
  std::vector<double> param_adjoint;
  std::vector<double> state_adjoint;
};

TapeEval Differentiate(const e::ExprPtr& root,
                       const std::vector<double>& variables,
                       const std::vector<double>& parameters,
                       int num_state_variables = 0,
                       const an::DomainEnv* prune_env = nullptr) {
  const Tape tape(*root, static_cast<int>(parameters.size()),
                  num_state_variables, prune_env);
  std::vector<double> values(tape.size(), 0.0);
  std::vector<double> cotangents(tape.size(), 0.0);
  const e::EvalContext ctx{variables.data(), variables.size(),
                           parameters.data(), parameters.size()};
  TapeEval out;
  out.param_adjoint.assign(parameters.empty() ? 1 : parameters.size(), 0.0);
  out.state_adjoint.assign(
      num_state_variables > 0 ? static_cast<std::size_t>(num_state_variables)
                              : 1,
      0.0);
  out.value = tape.Forward(ctx, values.data());
  tape.Reverse(values.data(), 1.0, out.param_adjoint.data(),
               out.state_adjoint.data(), cotangents.data());
  return out;
}

double EvalOne(const e::ExprPtr& root, const std::vector<double>& variables,
               const std::vector<double>& parameters) {
  const e::EvalContext ctx{variables.data(), variables.size(),
                           parameters.data(), parameters.size()};
  return e::EvalExpr(*root, ctx);
}

/// A tiny dataset with gently varying drivers and a non-constant
/// observation, so rollout gradients are non-degenerate.
r::RiverDataset GradDataset(std::size_t days) {
  r::RiverDataset dataset;
  dataset.num_days = days;
  dataset.drivers.assign(r::kNumVariables, {});
  for (int slot : r::ObservedVariableSlots()) {
    std::vector<double> series(days);
    for (std::size_t t = 0; t < days; ++t) {
      series[t] = 1.0 + 0.07 * static_cast<double>(slot) +
                  0.03 * static_cast<double>(t % 5);
    }
    dataset.drivers[static_cast<std::size_t>(slot)] = std::move(series);
  }
  dataset.observed_bphy.resize(days);
  for (std::size_t t = 0; t < days; ++t) {
    dataset.observed_bphy[t] =
        5.0 + 0.6 * static_cast<double>(static_cast<int>((t * 7) % 5) - 2);
  }
  dataset.train_end = days;
  dataset.initial_bphy = 5.0;
  dataset.initial_bzoo = 1.0;
  dataset.test_initial_bphy = 5.0;
  dataset.test_initial_bzoo = 1.0;
  return dataset;
}

/// The legacy plankton toy system used by the rollout tests: a smooth
/// light-driven growth/grazing pair, far from every clamp and kink, so
/// central differences are a trustworthy oracle.
std::vector<e::ExprPtr> PlanktonToyEquations() {
  // dB = p0 * V_lgt - p1 * B * Z
  // dZ = p2 * B * Z - 0.1 * Z
  const e::ExprPtr b = e::Variable(r::kBPhy, "B_Phy");
  const e::ExprPtr z = e::Variable(r::kBZoo, "B_Zoo");
  const e::ExprPtr lgt = e::Variable(r::kVlgt, "V_lgt");
  return {
      e::Sub(e::Mul(e::Parameter(0, "p0"), lgt),
             e::Mul(e::Parameter(1, "p1"), e::Mul(b, z))),
      e::Sub(e::Mul(e::Parameter(2, "p2"), e::Mul(b, z)),
             e::Mul(e::Constant(0.1), z)),
  };
}

/// Asserts the adjoint gradient matches central differences of the
/// value-only rollout objective, dimension by dimension.
void ExpectMatchesCentralDifference(const std::vector<e::ExprPtr>& equations,
                                    const std::vector<double>& parameters,
                                    const r::RiverDataset& dataset,
                                    std::size_t t_begin, std::size_t t_end,
                                    const r::ConstituentSet& constituents,
                                    const std::vector<double>& initial_state,
                                    const r::SimulationConfig& config) {
  const GradientResult result =
      RmseGradient(equations, parameters, dataset, t_begin, t_end,
                   constituents, initial_state, config);
  ASSERT_TRUE(result.gradient_valid);
  ASSERT_EQ(result.gradient.size(), parameters.size());
  EXPECT_FALSE(result.report.aborted);

  const calibrate::Objective objective =
      MakeRmseObjective(equations, &dataset, t_begin, t_end, constituents,
                        initial_state, config);
  EXPECT_EQ(ckpt::HexDouble(result.rmse), ckpt::HexDouble(objective(parameters)));

  for (std::size_t i = 0; i < parameters.size(); ++i) {
    const double h = 1e-6 * std::max(1.0, std::fabs(parameters[i]));
    std::vector<double> plus = parameters;
    std::vector<double> minus = parameters;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (objective(plus) - objective(minus)) / (2.0 * h);
    EXPECT_NEAR(result.gradient[i], fd,
                1e-5 * std::max(1.0, std::fabs(fd)))
        << "parameter slot " << i;
  }
}

// ------------------------------------------- tape: forward bit-identity ----

TEST(TapeTest, ForwardMatchesInterpreterBitwise) {
  // One expression exercising every operator kind, including protected
  // branches, evaluated over several contexts.
  const e::ExprPtr x = e::Variable(0, "x");
  const e::ExprPtr y = e::Variable(1, "y");
  const e::ExprPtr p = e::Parameter(0, "p");
  const e::ExprPtr q = e::Parameter(1, "q");
  const e::ExprPtr root = e::Add(
      e::Min(e::Mul(p, e::Exp(x)), e::Max(y, e::Neg(q))),
      e::Div(e::Log(e::Add(x, q)), e::Sub(e::Mul(x, y), e::Constant(0.5))));

  const std::vector<std::vector<double>> var_sets = {
      {0.5, -1.25}, {3.0, 2.0}, {-2.0, 0.0}, {90.0, 1e-13}, {1e-10, -3.5}};
  const std::vector<double> params = {1.75, -0.3};
  for (const auto& vars : var_sets) {
    const TapeEval tape = Differentiate(root, vars, params);
    const double reference = EvalOne(root, vars, params);
    EXPECT_EQ(ckpt::HexDouble(tape.value), ckpt::HexDouble(reference))
        << "x=" << vars[0] << " y=" << vars[1];
  }
}

// --------------------------------------- tape: per-primitive adjoints -----

TEST(TapeTest, AddSubNegAdjoints) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr p1 = e::Parameter(1, "p1");
  const std::vector<double> params = {2.5, -4.0};

  TapeEval out = Differentiate(e::Add(p0, p1), {}, params);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 1.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 1.0);

  out = Differentiate(e::Sub(p0, p1), {}, params);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 1.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], -1.0);

  out = Differentiate(e::Neg(p0), {}, params);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], -1.0);
}

TEST(TapeTest, MulProductRule) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr p1 = e::Parameter(1, "p1");
  const std::vector<double> params = {3.0, -7.0};
  const TapeEval out = Differentiate(e::Mul(p0, p1), {}, params);
  EXPECT_DOUBLE_EQ(out.value, -21.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], -7.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 3.0);
}

TEST(TapeTest, DivQuotientRuleOutsideProtectionBand) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr p1 = e::Parameter(1, "p1");
  const std::vector<double> params = {6.0, 4.0};
  const TapeEval out = Differentiate(e::Div(p0, p1), {}, params);
  EXPECT_DOUBLE_EQ(out.value, 1.5);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.25);          // 1 / b
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], -6.0 / 16.0);   // -a / b^2
}

TEST(TapeTest, DivInsideProtectionBandIsConstantOne) {
  // |b| < kDivEpsilon: the protected kernel returns the constant 1, so both
  // adjoints are exactly zero — the derivative of the branch that ran, not
  // of the textbook quotient.
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr p1 = e::Parameter(1, "p1");
  const std::vector<double> params = {6.0, 1e-10};
  const TapeEval out = Differentiate(e::Div(p0, p1), {}, params);
  EXPECT_DOUBLE_EQ(out.value, 1.0);
  EXPECT_EQ(out.param_adjoint[0], 0.0);
  EXPECT_EQ(out.param_adjoint[1], 0.0);
}

TEST(TapeTest, LogAdjointIsReciprocalForBothSigns) {
  // log(|x|): d/dx = sign(x)/|x| = 1/x on both sides of zero.
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  TapeEval out = Differentiate(e::Log(p0), {}, {2.0});
  EXPECT_DOUBLE_EQ(out.value, std::log(2.0));
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.5);

  out = Differentiate(e::Log(p0), {}, {-2.0});
  EXPECT_DOUBLE_EQ(out.value, std::log(2.0));
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], -0.5);
}

TEST(TapeTest, LogInsideZeroBandHasZeroAdjoint) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const TapeEval out = Differentiate(e::Log(p0), {}, {1e-13});
  EXPECT_EQ(out.value, 0.0);
  EXPECT_EQ(out.param_adjoint[0], 0.0);
}

TEST(TapeTest, ExpAdjointAndClampBoundary) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  TapeEval out = Differentiate(e::Exp(p0), {}, {1.5});
  EXPECT_DOUBLE_EQ(out.value, std::exp(1.5));
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], std::exp(1.5));

  // Above the clamp the value saturates at exp(80) and the adjoint is
  // exactly zero (the clamped branch is locally constant).
  out = Differentiate(e::Exp(p0), {}, {100.0});
  EXPECT_DOUBLE_EQ(out.value, std::exp(80.0));
  EXPECT_EQ(out.param_adjoint[0], 0.0);

  out = Differentiate(e::Exp(p0), {}, {-100.0});
  EXPECT_DOUBLE_EQ(out.value, std::exp(-80.0));
  EXPECT_EQ(out.param_adjoint[0], 0.0);
}

TEST(TapeTest, MinMaxRouteCotangentToSelectedBranch) {
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr p1 = e::Parameter(1, "p1");

  // min(a, b) == a < b ? a : b.
  TapeEval out = Differentiate(e::Min(p0, p1), {}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 1.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 0.0);
  out = Differentiate(e::Min(p0, p1), {}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 1.0);
  // Tie: `a < b` is false, so the kernel selects b; the whole cotangent
  // follows (never split between the operands).
  out = Differentiate(e::Min(p0, p1), {}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 1.0);

  // max(a, b) == a > b ? a : b; ties also select b.
  out = Differentiate(e::Max(p0, p1), {}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 1.0);
  out = Differentiate(e::Max(p0, p1), {}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 1.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 0.0);
  out = Differentiate(e::Max(p0, p1), {}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 0.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 1.0);
}

TEST(TapeTest, SharedSubtreesOccupyOneSlotAndAccumulate) {
  // Add(sub, sub) with a literally shared ExprPtr: pointer-memoized CSE
  // linearizes the subtree once, and its cotangent accumulates both paths.
  const e::ExprPtr shared = e::Mul(e::Parameter(0, "p0"), e::Variable(0, "x"));
  const e::ExprPtr root = e::Add(shared, shared);
  ASSERT_EQ(root->NodeCount(), 7u);

  const Tape tape(*root, 1, 1, nullptr);
  EXPECT_EQ(tape.size(), 4u);  // p0, x, Mul, Add — each once.

  const TapeEval out = Differentiate(root, {5.0}, {3.0}, 1);
  EXPECT_DOUBLE_EQ(out.value, 30.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[0], 10.0);  // 2 * x
  EXPECT_DOUBLE_EQ(out.state_adjoint[0], 6.0);   // 2 * p0
}

TEST(TapeTest, StateVariableAdjointsStopAtDrivers) {
  // Variable slots below num_state_variables accumulate adjoints; driver
  // slots are exogenous data and are never differentiated.
  const e::ExprPtr root =
      e::Mul(e::Variable(0, "state"), e::Variable(2, "driver"));
  const TapeEval out = Differentiate(root, {3.0, 0.0, 7.0}, {}, 1);
  EXPECT_DOUBLE_EQ(out.value, 21.0);
  EXPECT_DOUBLE_EQ(out.state_adjoint[0], 7.0);
}

TEST(TapeTest, ActivityPruningZeroesInactiveParameterExactly) {
  // (p0 - p0) * exp(x) is provably zero over any finite env: the activity
  // pass prunes the whole subtree, so p0's adjoint is exactly 0.0 — not a
  // rounding residue of w*exp(x) - w*exp(x).
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr root =
      e::Add(e::Mul(e::Sub(p0, p0), e::Exp(e::Variable(0, "x"))),
             e::Mul(e::Parameter(1, "p1"), e::Variable(0, "x")));

  an::DomainEnv env;
  env.variables = {an::Interval::Of(0.0, 10.0)};
  env.parameters = {an::Interval::Point(0.5), an::Interval::Point(0.25)};

  const Tape tape(*root, 2, 1, &env);
  EXPECT_GT(tape.pruned_nodes(), 0u);
  EXPECT_LT(tape.live_nodes(), tape.size());
  const std::vector<int> inactive =
      an::InactiveParameters(tape.root_activity(), 2);
  ASSERT_EQ(inactive.size(), 1u);
  EXPECT_EQ(inactive[0], 0);

  const TapeEval out = Differentiate(root, {2.0}, {0.5, 0.25}, 1, &env);
  EXPECT_EQ(out.param_adjoint[0], 0.0);
  EXPECT_DOUBLE_EQ(out.param_adjoint[1], 2.0);
  // The pruned forward value still matches the interpreter bitwise: pruning
  // only drops provably-zero flows, never changes the value.
  EXPECT_EQ(ckpt::HexDouble(out.value),
            ckpt::HexDouble(EvalOne(root, {2.0}, {0.5, 0.25})));
}

// ----------------------------------------------- discrete adjoint rollout --

TEST(AdjointRolloutTest, EulerGradientMatchesCentralDifference) {
  const r::RiverDataset dataset = GradDataset(8);
  ExpectMatchesCentralDifference(PlanktonToyEquations(), {0.4, 0.05, 0.06},
                                 dataset, 0, 3, r::ConstituentSet::LegacyPlankton(),
                                 {5.0, 1.0}, r::SimulationConfig{});
}

TEST(AdjointRolloutTest, Rk4GradientMatchesCentralDifference) {
  const r::RiverDataset dataset = GradDataset(8);
  r::SimulationConfig config;
  config.method = r::IntegrationMethod::kRk4;
  ExpectMatchesCentralDifference(PlanktonToyEquations(), {0.4, 0.05, 0.06},
                                 dataset, 0, 3,
                                 r::ConstituentSet::LegacyPlankton(),
                                 {5.0, 1.0}, config);
}

TEST(AdjointRolloutTest, LongerWindowAndSubstepsStillMatch) {
  const r::RiverDataset dataset = GradDataset(12);
  r::SimulationConfig config;
  config.substeps = 4;
  ExpectMatchesCentralDifference(PlanktonToyEquations(), {0.3, 0.04, 0.05},
                                 dataset, 2, 9,
                                 r::ConstituentSet::LegacyPlankton(),
                                 {5.0, 1.0}, config);
}

TEST(AdjointRolloutTest, TransportRegistryGradientMatchesCentralDifference) {
  const r::RiverDataset dataset = GradDataset(8);
  const r::ConstituentSet constituents = r::ConstituentSet::Transport(2);
  // dNO3 = kNit * NH4 - kNo3 * NO3 + sNo3 * V_lgt
  // dNH4 = -kNit * NH4 - kNh4 * NH4
  const e::ExprPtr no3 = e::Variable(0, "M_NO3");
  const e::ExprPtr nh4 = e::Variable(1, "M_NH4");
  const e::ExprPtr lgt = e::Variable(constituents.driver_slot(0), "V_lgt");
  const std::vector<e::ExprPtr> equations = {
      e::Add(e::Sub(e::Mul(e::Parameter(r::kKNit, "K_NIT"), nh4),
                    e::Mul(e::Parameter(r::kKNo3, "K_NO3"), no3)),
             e::Mul(e::Parameter(r::kSNo3, "S_NO3"), lgt)),
      e::Sub(e::Neg(e::Mul(e::Parameter(r::kKNit, "K_NIT"), nh4)),
             e::Mul(e::Parameter(r::kKNh4, "K_NH4"), nh4)),
  };
  std::vector<double> parameters(r::kNumTransportParameters, 0.0);
  parameters[r::kKNit] = 0.2;
  parameters[r::kKNo3] = 0.1;
  parameters[r::kKNh4] = 0.15;
  parameters[r::kSNo3] = 0.3;

  r::SimulationConfig config;
  config.num_species = 2;
  ExpectMatchesCentralDifference(equations, parameters, dataset, 0, 4,
                                 constituents, constituents.InitialStates(),
                                 config);
}

TEST(AdjointRolloutTest, RmseMatchesValueObjectiveBitwiseUnderBothMethods) {
  const r::RiverDataset dataset = GradDataset(8);
  const std::vector<e::ExprPtr> equations = PlanktonToyEquations();
  const std::vector<double> parameters = {0.4, 0.05, 0.06};
  for (const r::IntegrationMethod method :
       {r::IntegrationMethod::kEuler, r::IntegrationMethod::kRk4}) {
    r::SimulationConfig config;
    config.method = method;
    const GradientResult result = RmseGradient(
        equations, parameters, dataset, 0, 5,
        r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, config);
    const calibrate::Objective objective = MakeRmseObjective(
        equations, &dataset, 0, 5, r::ConstituentSet::LegacyPlankton(),
        {5.0, 1.0}, config);
    EXPECT_EQ(ckpt::HexDouble(result.rmse),
              ckpt::HexDouble(objective(parameters)));
  }
}

TEST(AdjointRolloutTest, WatchdogAbortYieldsFiniteZeroPenaltyGradient) {
  // The first equation's derivative overflows to +inf on every substep, so
  // the non-finite-derivative watchdog aborts the rollout. The penalty tail
  // is a constant, so the gradient must come back valid and exactly zero —
  // never NaN.
  const r::RiverDataset dataset = GradDataset(10);
  const e::ExprPtr big = e::Exp(e::Constant(79.0));       // e^79  ~ 2e34
  const e::ExprPtr big4 = e::Mul(e::Mul(big, big), e::Mul(big, big));
  const e::ExprPtr overflow = e::Mul(e::Mul(big4, big4), big4);  // e^948 = inf
  const std::vector<e::ExprPtr> equations = {
      e::Add(overflow, e::Mul(e::Parameter(0, "p0"), e::Variable(0, "B"))),
      e::Constant(0.0),
  };
  r::SimulationConfig config;
  config.max_nonfinite_derivatives = 2;
  const GradientResult result =
      RmseGradient(equations, {0.2}, dataset, 0, 10,
                   r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, config);
  EXPECT_TRUE(result.report.aborted);
  EXPECT_TRUE(result.gradient_valid);
  ASSERT_EQ(result.gradient.size(), 1u);
  for (const double g : result.gradient) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_EQ(g, 0.0);
  }
  EXPECT_TRUE(std::isfinite(result.rmse));
}

TEST(AdjointRolloutTest, PrunedInactiveParameterHasExactZeroGradient) {
  // (p0 - p0) * V_lgt contributes nothing; with pruning on, p0's rollout
  // gradient is exactly 0.0 and the forward RMSE is untouched.
  const r::RiverDataset dataset = GradDataset(8);
  const e::ExprPtr p0 = e::Parameter(0, "p0");
  const e::ExprPtr lgt = e::Variable(r::kVlgt, "V_lgt");
  const std::vector<e::ExprPtr> equations = {
      e::Add(e::Mul(e::Sub(p0, p0), lgt),
             e::Mul(e::Parameter(1, "p1"), lgt)),
      e::Constant(0.0),
  };
  const std::vector<double> parameters = {0.7, 0.3};
  const r::SimulationConfig config;
  const GradientResult pruned = RmseGradient(
      equations, parameters, dataset, 0, 5,
      r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, config, true);
  const GradientResult unpruned = RmseGradient(
      equations, parameters, dataset, 0, 5,
      r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, config, false);

  ASSERT_TRUE(pruned.gradient_valid);
  ASSERT_TRUE(unpruned.gradient_valid);
  EXPECT_EQ(pruned.gradient[0], 0.0);
  EXPECT_NE(pruned.gradient[1], 0.0);
  EXPECT_GT(pruned.pruned_nodes, 0u);
  EXPECT_EQ(unpruned.pruned_nodes, 0u);
  EXPECT_EQ(ckpt::HexDouble(pruned.rmse), ckpt::HexDouble(unpruned.rmse));
  // Pruning only removes provably-zero flows: the surviving slot agrees.
  EXPECT_NEAR(pruned.gradient[1], unpruned.gradient[1],
              1e-12 * std::max(1.0, std::fabs(unpruned.gradient[1])));
}

TEST(AdjointRolloutTest, RiverGradientFitnessPopulatesStats) {
  const r::RiverDataset dataset = GradDataset(8);
  const RiverGradientFitness fitness = RiverGradientFitness::ForTraining(
      &dataset, r::ConstituentSet::LegacyPlankton());
  const std::vector<e::ExprPtr> equations = PlanktonToyEquations();
  const std::vector<double> parameters = {0.4, 0.05, 0.06};

  double value = 0.0;
  std::vector<double> gradient;
  gp::GradientFitness::GradientStats stats;
  ASSERT_TRUE(fitness.EvaluateGradient(equations, parameters, &value,
                                       &gradient, &stats));
  EXPECT_TRUE(std::isfinite(value));
  ASSERT_EQ(gradient.size(), parameters.size());
  for (const double g : gradient) EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(stats.tape_nodes, 0u);

  const calibrate::Objective objective = MakeRmseObjective(
      equations, &dataset, 0, dataset.train_end,
      r::ConstituentSet::LegacyPlankton(),
      r::ConstituentSet::LegacyPlankton().InitialStates(),
      r::SimulationConfig{});
  EXPECT_EQ(ckpt::HexDouble(value), ckpt::HexDouble(objective(parameters)));
}

// ------------------------------------------------------- fault injection ---

TEST(GradFaultTest, TapeAllocFaultThrowsBadAlloc) {
  std::string error;
  ASSERT_TRUE(SetFaultSpec("tape_alloc:always", &error)) << error;
  const e::ExprPtr root = e::Parameter(0, "p0");
  EXPECT_THROW(Tape(*root, 1, 0, nullptr), std::bad_alloc);
  ClearFaults();
  EXPECT_NO_THROW(Tape(*root, 1, 0, nullptr));
}

TEST(GradFaultTest, AdjointNanFaultPoisonsAdjoints) {
  std::string error;
  ASSERT_TRUE(SetFaultSpec("adjoint_nan:always", &error)) << error;
  const TapeEval out = Differentiate(e::Parameter(0, "p0"), {}, {2.0});
  EXPECT_TRUE(std::isnan(out.param_adjoint[0]));
  ClearFaults();
}

TEST(GradFaultTest, RmseGradientFlagsTapeAllocFault) {
  const r::RiverDataset dataset = GradDataset(8);
  const std::vector<e::ExprPtr> equations = PlanktonToyEquations();
  const std::vector<double> parameters = {0.4, 0.05, 0.06};

  std::string error;
  ASSERT_TRUE(SetFaultSpec("tape_alloc:always", &error)) << error;
  const GradientResult result =
      RmseGradient(equations, parameters, dataset, 0, 5,
                   r::ConstituentSet::LegacyPlankton(), {5.0, 1.0},
                   r::SimulationConfig{});
  ClearFaults();

  EXPECT_FALSE(result.gradient_valid);
  // The forward rollout is unaffected: the RMSE is still trustworthy.
  EXPECT_TRUE(std::isfinite(result.rmse));
  const calibrate::Objective objective = MakeRmseObjective(
      equations, &dataset, 0, 5, r::ConstituentSet::LegacyPlankton(),
      {5.0, 1.0}, r::SimulationConfig{});
  EXPECT_EQ(ckpt::HexDouble(result.rmse),
            ckpt::HexDouble(objective(parameters)));
}

TEST(GradFaultTest, RmseGradientFlagsAdjointNanFault) {
  const r::RiverDataset dataset = GradDataset(8);
  std::string error;
  ASSERT_TRUE(SetFaultSpec("adjoint_nan:always", &error)) << error;
  const GradientResult result = RmseGradient(
      PlanktonToyEquations(), {0.4, 0.05, 0.06}, dataset, 0, 5,
      r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, r::SimulationConfig{});
  ClearFaults();
  EXPECT_FALSE(result.gradient_valid);
  EXPECT_TRUE(std::isfinite(result.rmse));
}

TEST(GradFaultTest, GradientObjectiveSignalsFailureWithNan) {
  const r::RiverDataset dataset = GradDataset(8);
  const calibrate::GradientObjective gradient = MakeRmseGradientObjective(
      PlanktonToyEquations(), &dataset, 0, 5,
      r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, r::SimulationConfig{});

  std::string error;
  ASSERT_TRUE(SetFaultSpec("tape_alloc:always", &error)) << error;
  std::vector<double> g;
  const double value = gradient({0.4, 0.05, 0.06}, &g);
  ClearFaults();

  EXPECT_TRUE(std::isfinite(value));
  ASSERT_EQ(g.size(), 3u);
  for (const double gi : g) EXPECT_TRUE(std::isnan(gi));
}

// --------------------------------------------- gradient-based calibrators --

calibrate::BoxBounds SphereBounds() {
  calibrate::BoxBounds bounds;
  bounds.lo = {-2.0, 0.0, 10.0, -5.0};
  bounds.hi = {2.0, 1.0, 20.0, 5.0};
  return bounds;
}

const std::vector<double> kSphereOptimum = {0.7, 0.25, 13.0, -2.5};
const std::vector<double> kSphereInitial = {-1.0, 0.9, 19.0, 4.0};

double SphereValue(const std::vector<double>& x) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - kSphereOptimum[i];
    sum += d * d;
  }
  return sum;
}

double SphereValueAndGradient(const std::vector<double>& x,
                              std::vector<double>* gradient) {
  gradient->assign(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    (*gradient)[i] = 2.0 * (x[i] - kSphereOptimum[i]);
  }
  return SphereValue(x);
}

TEST(GradientCalibratorTest, LbfgsConvergesOnSphereWithExactGradient) {
  const calibrate::LbfgsCalibrator method;
  Rng rng(7);
  const calibrate::CalibrationResult result = method.CalibrateWithGradient(
      SphereValue, SphereValueAndGradient, SphereBounds(), kSphereInitial,
      200, rng, obs::RunContext{});
  EXPECT_LE(result.evaluations, 200u);
  EXPECT_LT(result.best_objective, 1e-6);
  ASSERT_EQ(result.best_parameters.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.best_parameters[i], kSphereOptimum[i], 1e-3);
  }
}

TEST(GradientCalibratorTest, AdamImprovesOnSphereWithExactGradient) {
  const calibrate::AdamCalibrator method;
  Rng rng(11);
  const calibrate::CalibrationResult result = method.CalibrateWithGradient(
      SphereValue, SphereValueAndGradient, SphereBounds(), kSphereInitial,
      400, rng, obs::RunContext{});
  EXPECT_LE(result.evaluations, 400u);
  EXPECT_LT(result.best_objective, 1.0);
  EXPECT_LT(result.best_objective, SphereValue(kSphereInitial));
}

TEST(GradientCalibratorTest, LbfgsDegradesToDerivativeFreeOnPoisonedGradient) {
  // Every gradient query fails (all-NaN): L-BFGS must fall back to the
  // derivative-free path, keep improving, and never crash or return NaN.
  const calibrate::GradientObjective poisoned =
      [](const std::vector<double>& x, std::vector<double>* gradient) {
        gradient->assign(x.size(), std::nan(""));
        return SphereValue(x);
      };
  const calibrate::LbfgsCalibrator method;
  Rng rng(5);
  const calibrate::CalibrationResult result = method.CalibrateWithGradient(
      SphereValue, poisoned, SphereBounds(), kSphereInitial, 300, rng,
      obs::RunContext{});
  EXPECT_LE(result.evaluations, 300u);
  EXPECT_TRUE(std::isfinite(result.best_objective));
  EXPECT_LT(result.best_objective, SphereValue(kSphereInitial));
  const calibrate::BoxBounds bounds = SphereBounds();
  ASSERT_EQ(result.best_parameters.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(result.best_parameters[i], bounds.lo[i] - 1e-12);
    EXPECT_LE(result.best_parameters[i], bounds.hi[i] + 1e-12);
  }
}

TEST(GradientCalibratorTest, LbfgsDegradesUnderTapeAllocFaultOnRiverProblem) {
  // End to end through calibrate::Run: the river gradient objective is
  // permanently faulted, so every adjoint query fails and L-BFGS must
  // finish on the derivative-free path with a finite incumbent.
  const r::RiverDataset dataset = GradDataset(8);
  const std::vector<e::ExprPtr> equations = PlanktonToyEquations();

  calibrate::CalibrationProblem problem;
  problem.objective = MakeRmseObjective(equations, &dataset, 0, 5,
                                        r::ConstituentSet::LegacyPlankton(),
                                        {5.0, 1.0}, r::SimulationConfig{});
  problem.gradient = MakeRmseGradientObjective(
      equations, &dataset, 0, 5, r::ConstituentSet::LegacyPlankton(),
      {5.0, 1.0}, r::SimulationConfig{});
  problem.bounds.lo = {0.01, 0.01, 0.01};
  problem.bounds.hi = {1.0, 1.0, 1.0};
  problem.initial = {0.4, 0.05, 0.06};

  calibrate::CalibrationConfig config;
  config.budget = 40;
  config.seed = 3;

  std::string error;
  ASSERT_TRUE(SetFaultSpec("tape_alloc:always", &error)) << error;
  const calibrate::CalibrationResult result =
      calibrate::Run(calibrate::LbfgsCalibrator{}, config, problem);
  ClearFaults();

  EXPECT_LE(result.evaluations, 40u);
  EXPECT_TRUE(std::isfinite(result.best_objective));
  EXPECT_LT(result.best_objective, 1e300);
}

// ------------------------------------------------ bit-identical resume -----

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/grad_test_" + name;
  std::error_code ignore;
  fs::remove_all(path, ignore);
  fs::create_directories(path);
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ckpt::CheckpointOptions CheckpointEveryStep(const std::string& dir) {
  ckpt::CheckpointOptions options;
  options.dir = dir;
  options.every_steps = 1;
  options.retain = 64;
  return options;
}

/// Rosenbrock in 4 dims (two independent 2-d valleys): curved enough that
/// L-BFGS iterates long enough to leave several snapshots behind.
double RosenbrockValue(const std::vector<double>& x) {
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); i += 2) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    sum += 100.0 * a * a + b * b;
  }
  return sum;
}

double RosenbrockValueAndGradient(const std::vector<double>& x,
                                  std::vector<double>* gradient) {
  gradient->assign(x.size(), 0.0);
  for (std::size_t i = 0; i + 1 < x.size(); i += 2) {
    const double a = x[i + 1] - x[i] * x[i];
    (*gradient)[i] = -400.0 * a * x[i] - 2.0 * (1.0 - x[i]);
    (*gradient)[i + 1] = 200.0 * a;
  }
  return RosenbrockValue(x);
}

struct SegmentRun {
  std::string trace;
  std::string digest;
  bool resumed = false;
  std::uint64_t resumed_step = 0;
};

SegmentRun RunLbfgsSegment(const std::string& dir) {
  calibrate::CalibrationConfig config;
  config.budget = 400;
  config.seed = 33;
  calibrate::CalibrationProblem problem;
  problem.objective = RosenbrockValue;
  problem.gradient = RosenbrockValueAndGradient;
  problem.bounds.lo = {-2.0, -2.0, -2.0, -2.0};
  problem.bounds.hi = {2.0, 2.0, 2.0, 2.0};
  problem.initial = {-1.2, 1.0, -1.2, 1.0};

  SegmentRun run;
  const std::string trace_path = dir + "/trace.jsonl";
  {
    ckpt::Checkpointer checkpointer(CheckpointEveryStep(dir + "/ck"));
    if (const ckpt::Snapshot* snapshot = checkpointer.Load()) {
      run.resumed = true;
      run.resumed_step = snapshot->step;
    }
    obs::JsonlTraceOptions options = obs::JsonlTraceOptions::Deterministic();
    options.resume = true;
    options.resume_bytes = checkpointer.resume_trace_bytes();
    options.resume_sequence = checkpointer.resume_trace_sequence();
    obs::JsonlTraceSink sink(trace_path, options);
    EXPECT_TRUE(sink.ok());
    checkpointer.AttachTraceSink(&sink);

    obs::RunContext context;
    context.sink = &sink;
    context.checkpointer = &checkpointer;
    const calibrate::CalibrationResult result = calibrate::Run(
        calibrate::LbfgsCalibrator{}, config, problem, context);
    std::ostringstream digest;
    digest << "best " << ckpt::HexDouble(result.best_objective) << "\n"
           << ckpt::SerializeDoubles(result.best_parameters) << "\n"
           << "evaluations " << result.evaluations << " failed "
           << result.failed_evaluations << "\n";
    run.digest = digest.str();
  }
  run.trace = ReadFile(trace_path);
  return run;
}

TEST(GradientCalibratorTest, LbfgsResumesBitIdentically) {
  const std::string dir = FreshDir("resume_lbfgs");
  const SegmentRun full = RunLbfgsSegment(dir);
  EXPECT_FALSE(full.resumed);
  ASSERT_FALSE(full.trace.empty());

  // Rewind the store to a mid-run step, as if the process died there.
  ckpt::SnapshotStore store(dir + "/ck", /*retain=*/64);
  ASSERT_GE(store.entries().size(), 3u);
  const std::uint64_t last = store.entries().back().step;
  const std::uint64_t mid =
      store.entries()[(store.entries().size() - 1) / 2].step;
  ASSERT_LT(mid, last);
  ASSERT_TRUE(store.DropNewerThan(mid).ok());

  const SegmentRun resumed = RunLbfgsSegment(dir);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_step, mid);
  EXPECT_EQ(resumed.trace, full.trace);
  EXPECT_EQ(resumed.digest, full.digest);
}

}  // namespace
}  // namespace gmr::grad
