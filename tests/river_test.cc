#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "common/metrics.h"
#include "expr/eval.h"
#include "expr/print.h"
#include "river/biology.h"
#include "river/dataset.h"
#include "river/network.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

namespace e = gmr::expr;

// ---------------------------------------------------------- variables -----

TEST(VariablesTest, NamesAndSlots) {
  EXPECT_STREQ(VariableName(kBPhy), "B_Phy");
  EXPECT_STREQ(VariableName(kVph), "V_ph");
  EXPECT_EQ(VariableNames().size(), static_cast<std::size_t>(kNumVariables));
  const auto observed = ObservedVariableSlots();
  EXPECT_EQ(observed.size(), static_cast<std::size_t>(kNumVariables - 2));
  EXPECT_EQ(observed.front(), kVlgt);
}

// --------------------------------------------------------- parameters -----

TEST(ParametersTest, PriorsMatchTableIII) {
  const auto priors = RiverParameterPriors();
  ASSERT_EQ(priors.size(), static_cast<std::size_t>(kNumParameters));
  EXPECT_EQ(priors[kCUA].name, "C_UA");
  EXPECT_DOUBLE_EQ(priors[kCUA].mean, 1.89);
  EXPECT_DOUBLE_EQ(priors[kCUA].lo, 0.1);
  EXPECT_DOUBLE_EQ(priors[kCUA].hi, 4.0);
  EXPECT_DOUBLE_EQ(priors[kCBTP1].mean, 27.0);
  EXPECT_DOUBLE_EQ(priors[kCP].mean, 0.00167);
  for (const auto& prior : priors) {
    EXPECT_GE(prior.mean, prior.lo) << prior.name;
    EXPECT_LE(prior.mean, prior.hi) << prior.name;
    EXPECT_GT(prior.InitialSigma(), 0.0) << prior.name;
  }
}

TEST(ParametersTest, TrueParametersWithinBounds) {
  const auto priors = RiverParameterPriors();
  const auto truth = TrueParameters();
  ASSERT_EQ(truth.size(), priors.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_GE(truth[i], priors[i].lo) << priors[i].name;
    EXPECT_LE(truth[i], priors[i].hi) << priors[i].name;
  }
}

// ------------------------------------------------------------ biology -----

struct BiologyFixture : public ::testing::Test {
  std::vector<double> vars = [] {
    std::vector<double> v(kNumVariables, 0.0);
    v[kBPhy] = 10.0;
    v[kBZoo] = 2.0;
    v[kVlgt] = 20.0;
    v[kVn] = 2.0;
    v[kVp] = 0.05;
    v[kVsi] = 3.0;
    v[kVtmp] = 20.0;
    v[kVdo] = 10.0;
    v[kVcd] = 300.0;
    v[kVph] = 8.0;
    v[kValk] = 50.0;
    v[kVsd] = 1.5;
    return v;
  }();
  std::vector<double> params = gp::PriorMeans(RiverParameterPriors());

  double Eval(const e::ExprPtr& expr) const {
    e::EvalContext ctx;
    ctx.variables = vars.data();
    ctx.num_variables = vars.size();
    ctx.parameters = params.data();
    ctx.num_parameters = params.size();
    return e::EvalExpr(*expr, ctx);
  }
};

TEST_F(BiologyFixture, LambdaPhyMatchesFormula) {
  const double food = vars[kBPhy] - params[kCFmin];
  EXPECT_NEAR(Eval(LambdaPhy()), food / (params[kCFS] + food), 1e-12);
}

TEST_F(BiologyFixture, LightResponseMatchesFormula) {
  const double effective =
      vars[kVlgt] * std::exp(-params[kCSH] * vars[kBPhy]);
  const double ratio = effective / params[kCBL];
  EXPECT_NEAR(Eval(LightResponse()), ratio * std::exp(1.0 - ratio), 1e-12);
}

TEST_F(BiologyFixture, NutrientLimitationIsLiebigMinimum) {
  const double gn = vars[kVn] / (params[kCN] + vars[kVn]);
  const double gp = vars[kVp] / (params[kCP] + vars[kVp]);
  const double gs = vars[kVsi] / (params[kCSI] + vars[kVsi]);
  EXPECT_NEAR(Eval(NutrientLimitation()), std::min({gn, gp, gs}), 1e-12);
}

TEST_F(BiologyFixture, TemperatureResponseIsMaxOfGaussians) {
  const double d1 = vars[kVtmp] - params[kCBTP1];
  const double d2 = vars[kVtmp] - params[kCBTP2];
  const double expected = std::max(std::exp(-params[kCPT] * d1 * d1),
                                   std::exp(-params[kCPT] * d2 * d2));
  EXPECT_NEAR(Eval(TemperatureResponse()), expected, 1e-12);
}

TEST_F(BiologyFixture, DerivativesAssembleSubprocesses) {
  const double mu = Eval(MuPhy());
  const double gamma = Eval(GammaPhy());
  const double phi = Eval(Phi());
  EXPECT_NEAR(Eval(PhytoplanktonDerivative()),
              vars[kBPhy] * (mu - gamma) - vars[kBZoo] * phi, 1e-12);

  const double mu_zoo = Eval(MuZoo());
  const double gamma_zoo = Eval(GammaZoo());
  const double delta_zoo = Eval(DeltaZoo());
  EXPECT_NEAR(Eval(ZooplanktonDerivative()),
              vars[kBZoo] * (mu_zoo - (gamma_zoo + delta_zoo)), 1e-12);
}

TEST_F(BiologyFixture, GammaZooIncludesGrazingMultiplier) {
  EXPECT_NEAR(Eval(GammaZoo()),
              params[kCBRZ] + params[kCBMT] * Eval(Phi()), 1e-12);
}

TEST(BiologyTest, ManualProcessHasTwoEquations) {
  const auto process = ManualProcess();
  ASSERT_EQ(process.size(), 2u);
  // Both equations must reference the coupled state.
  const auto slots0 = e::ReferencedVariableSlots(*process[0]);
  EXPECT_TRUE(std::find(slots0.begin(), slots0.end(), kBZoo) != slots0.end());
  const auto slots1 = e::ReferencedVariableSlots(*process[1]);
  EXPECT_TRUE(std::find(slots1.begin(), slots1.end(), kBPhy) != slots1.end());
}

TEST(BiologyTest, RiverSymbolsParseEquationText) {
  const auto result =
      e::Parse("B_Phy * (C_UA - C_BRA) - B_Zoo * V_tmp", RiverSymbols());
  ASSERT_TRUE(result.ok()) << result.error;
}

// ------------------------------------------------------------ network -----

TEST(NetworkTest, NakdongTopology) {
  const RiverNetwork network = RiverNetwork::Nakdong();
  EXPECT_EQ(network.num_stations(), 12u);  // 9 real + 3 virtual
  const int sink = network.Sink();
  EXPECT_EQ(network.station(sink).name, "S1");
  int virtual_count = 0;
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    virtual_count += network.station(static_cast<int>(s)).is_virtual;
  }
  EXPECT_EQ(virtual_count, 3);
  // Virtual stations sit at confluences: in-degree 2.
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    if (network.station(static_cast<int>(s)).is_virtual) {
      EXPECT_EQ(network.InboundReaches(static_cast<int>(s)).size(), 2u);
    }
  }
}

TEST(NetworkTest, TopologicalOrderRespectsReaches) {
  const RiverNetwork network = RiverNetwork::Nakdong();
  const std::vector<int> order = network.TopologicalOrder();
  ASSERT_EQ(order.size(), network.num_stations());
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const Reach& reach : network.reaches()) {
    EXPECT_LT(position[static_cast<std::size_t>(reach.from)],
              position[static_cast<std::size_t>(reach.to)]);
  }
}

TEST(NetworkTest, FindStation) {
  const RiverNetwork network = RiverNetwork::Nakdong();
  EXPECT_GE(network.FindStation("T2"), 0);
  EXPECT_EQ(network.FindStation("X9"), -1);
}

HydrologicalProcess::Input TwoStationInput(std::size_t days,
                                           double attribute_value) {
  // Station 0 -> station 1.
  HydrologicalProcess::Input input;
  input.attributes.resize(2);
  input.rainfall.resize(2);
  input.base_flow = {10.0, 5.0};
  for (std::size_t s = 0; s < 2; ++s) {
    input.attributes[s] = {std::vector<double>(days, attribute_value)};
    input.rainfall[s] = std::vector<double>(days, s == 0 ? 2.0 : 1.0);
  }
  return input;
}

TEST(HydrologyTest, ConstantAttributeIsPreservedDownstream) {
  RiverNetwork network;
  const int a = network.AddStation("A");
  const int b = network.AddStation("B");
  network.AddReach(a, b, 1, 0.3);
  HydrologicalProcess hydrology(&network);
  const auto out = hydrology.Route(TwoStationInput(50, 7.5));
  // Mixing water bodies that all carry 7.5 must yield 7.5 everywhere.
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_NEAR(out.attributes[static_cast<std::size_t>(b)][0][t], 7.5, 1e-9)
        << "day " << t;
  }
}

TEST(HydrologyTest, FlowIsPositiveAndBounded) {
  const RiverNetwork network = RiverNetwork::Nakdong();
  HydrologicalProcess hydrology(&network);
  HydrologicalProcess::Input input;
  const std::size_t days = 100;
  input.attributes.resize(network.num_stations());
  input.rainfall.resize(network.num_stations());
  input.base_flow.assign(network.num_stations(), 0.0);
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    if (network.station(static_cast<int>(s)).is_virtual) continue;
    input.attributes[s] = {std::vector<double>(days, 1.0)};
    input.rainfall[s] = std::vector<double>(days, 1.0);
    input.base_flow[s] = 10.0;
  }
  const auto out = hydrology.Route(input);
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    for (std::size_t t = 1; t < days; ++t) {
      EXPECT_GT(out.flow[s][t], 0.0);
      EXPECT_LT(out.flow[s][t], 1e6);
    }
  }
}

TEST(HydrologyTest, ConfluenceMixesByFlow) {
  // Two sources with different attribute values merge at a virtual station;
  // the mix must lie strictly between them and closer to the bigger flow.
  RiverNetwork network;
  const int big = network.AddStation("BIG");
  const int small = network.AddStation("SMALL");
  const int join = network.AddStation("VS", /*is_virtual=*/true);
  network.AddReach(big, join, 1, 0.0);
  network.AddReach(small, join, 1, 0.0);
  HydrologicalProcess hydrology(&network);
  HydrologicalProcess::Input input;
  const std::size_t days = 30;
  input.attributes.resize(3);
  input.rainfall.resize(3);
  input.base_flow = {90.0, 10.0, 0.0};
  input.attributes[static_cast<std::size_t>(big)] = {
      std::vector<double>(days, 10.0)};
  input.attributes[static_cast<std::size_t>(small)] = {
      std::vector<double>(days, 20.0)};
  input.rainfall[static_cast<std::size_t>(big)] =
      std::vector<double>(days, 0.0);
  input.rainfall[static_cast<std::size_t>(small)] =
      std::vector<double>(days, 0.0);
  const auto out = hydrology.Route(input);
  const double mixed =
      out.attributes[static_cast<std::size_t>(join)][0][days - 1];
  EXPECT_GT(mixed, 10.0);
  EXPECT_LT(mixed, 20.0);
  // Flow-weighted: 0.9 * 10 + 0.1 * 20 = 11.
  EXPECT_NEAR(mixed, 11.0, 0.5);
}

// ----------------------------------------------------------- simulate -----

RiverDataset TinyDataset(std::size_t days) {
  RiverDataset dataset;
  dataset.num_days = days;
  dataset.drivers.assign(kNumVariables, {});
  for (int slot : ObservedVariableSlots()) {
    dataset.drivers[static_cast<std::size_t>(slot)] =
        std::vector<double>(days, 1.0);
  }
  dataset.observed_bphy = std::vector<double>(days, 5.0);
  dataset.train_end = days / 2;
  dataset.initial_bphy = 5.0;
  dataset.initial_bzoo = 1.0;
  dataset.test_initial_bphy = 5.0;
  dataset.test_initial_bzoo = 1.0;
  return dataset;
}

TEST(SimulateTest, ZeroDerivativeKeepsStateConstant) {
  const RiverDataset dataset = TinyDataset(20);
  const std::vector<e::ExprPtr> equations{e::Constant(0.0),
                                          e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  const auto predicted = SimulateBPhy(equations, params, dataset, 0, 20,
                                      5.0, 1.0, SimulationConfig{}, true);
  ASSERT_EQ(predicted.size(), 20u);
  for (double p : predicted) EXPECT_DOUBLE_EQ(p, 5.0);
}

TEST(SimulateTest, ConstantGrowthMatchesAnalyticEuler) {
  const RiverDataset dataset = TinyDataset(10);
  // dB/dt = 1 with two substeps/day: B(t) = 5 + (t+1).
  const std::vector<e::ExprPtr> equations{e::Constant(1.0),
                                          e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  SimulationConfig config;
  config.substeps = 2;
  const auto predicted =
      SimulateBPhy(equations, params, dataset, 0, 10, 5.0, 1.0, config, true);
  for (std::size_t t = 0; t < predicted.size(); ++t) {
    EXPECT_NEAR(predicted[t], 5.0 + static_cast<double>(t + 1), 1e-9);
  }
}

TEST(SimulateTest, StateIsClampedOnDivergence) {
  const RiverDataset dataset = TinyDataset(15);
  // Explosive growth hits the state_max clamp instead of producing inf.
  const std::vector<e::ExprPtr> equations{
      e::Mul(e::Variable(kBPhy, "B"), e::Constant(10.0)), e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  SimulationConfig config;
  const auto predicted = SimulateBPhy(equations, params, dataset, 0, 15, 5.0,
                                      1.0, config, true);
  for (double p : predicted) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_LE(p, config.state_max);
  }
  EXPECT_DOUBLE_EQ(predicted.back(), config.state_max);
}


TEST(SimulateTest, Rk4MatchesExponentialDecayClosely) {
  const RiverDataset dataset = TinyDataset(30);
  // dB/dt = -0.5 B: analytic B(t) = 5 e^{-0.5 t}. RK4 with 1 substep/day
  // must be far more accurate than Euler with 1 substep/day.
  const std::vector<e::ExprPtr> equations{
      e::Mul(e::Constant(-0.5), e::Variable(kBPhy, "B")), e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  SimulationConfig euler;
  euler.method = IntegrationMethod::kEuler;
  euler.substeps = 1;
  SimulationConfig rk4;
  rk4.method = IntegrationMethod::kRk4;
  rk4.substeps = 1;
  const auto pe = SimulateBPhy(equations, params, dataset, 0, 30, 5.0, 1.0,
                               euler, true);
  const auto pr = SimulateBPhy(equations, params, dataset, 0, 30, 5.0, 1.0,
                               rk4, true);
  double euler_err = 0.0;
  double rk4_err = 0.0;
  for (std::size_t t = 0; t < 30; ++t) {
    const double exact = 5.0 * std::exp(-0.5 * static_cast<double>(t + 1));
    // The clamp floor (0.01) kicks in late in the decay; stop comparing.
    if (exact < 0.02) break;
    euler_err = std::max(euler_err, std::fabs(pe[t] - exact));
    rk4_err = std::max(rk4_err, std::fabs(pr[t] - exact));
  }
  EXPECT_LT(rk4_err, euler_err / 50.0);
}

TEST(SimulateTest, Rk4AgreesWithEulerOnLinearDynamics) {
  const RiverDataset dataset = TinyDataset(10);
  // Constant derivative: both schemes are exact and identical.
  const std::vector<e::ExprPtr> equations{e::Constant(2.0),
                                          e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  SimulationConfig euler;
  SimulationConfig rk4;
  rk4.method = IntegrationMethod::kRk4;
  const auto a = SimulateBPhy(equations, params, dataset, 0, 10, 5.0, 1.0,
                              euler, true);
  const auto b = SimulateBPhy(equations, params, dataset, 0, 10, 5.0, 1.0,
                              rk4, true);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_NEAR(a[t], b[t], 1e-12);
}

TEST(SimulateTest, InterpretedAndCompiledBackendsAgree) {
  const RiverDataset dataset = TinyDataset(30);
  const auto equations = ManualProcess();
  const auto params = gp::PriorMeans(RiverParameterPriors());
  const auto a = SimulateBPhy(equations, params, dataset, 0, 30, 5.0, 1.0,
                              SimulationConfig{}, true);
  const auto b = SimulateBPhy(equations, params, dataset, 0, 30, 5.0, 1.0,
                              SimulationConfig{}, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) EXPECT_DOUBLE_EQ(a[t], b[t]);
}

TEST(RiverFitnessTest, RunningRmseMatchesBatchSimulation) {
  const RiverDataset dataset = TinyDataset(40);
  const auto equations = ManualProcess();
  const auto params = gp::PriorMeans(RiverParameterPriors());
  const RiverFitness fitness = RiverFitness::ForTraining(&dataset);
  auto eval = fitness.Begin(equations, params, /*compiled=*/true);
  while (eval->steps_taken() < fitness.num_cases()) {
    if (!eval->Step()) break;
  }
  EXPECT_EQ(eval->steps_taken(), dataset.train_end);

  const auto predicted =
      SimulateBPhy(equations, params, dataset, 0, dataset.train_end, 5.0,
                   1.0, SimulationConfig{}, true);
  const std::vector<double> observed(
      dataset.observed_bphy.begin(),
      dataset.observed_bphy.begin() +
          static_cast<std::ptrdiff_t>(dataset.train_end));
  EXPECT_NEAR(eval->CurrentFitness(), Rmse(predicted, observed), 1e-12);
}

TEST(RiverFitnessTest, TestRangeUsesTestInitialState) {
  RiverDataset dataset = TinyDataset(40);
  dataset.test_initial_bphy = 9.0;
  const RiverFitness fitness = RiverFitness::ForTest(&dataset);
  EXPECT_EQ(fitness.num_cases(), dataset.num_days - dataset.train_end);
  const std::vector<e::ExprPtr> equations{e::Constant(0.0),
                                          e::Constant(0.0)};
  const std::vector<double> params(kNumParameters, 0.0);
  auto eval = fitness.Begin(equations, params, true);
  eval->Step();
  // Observed is 5, state pinned at 9 -> running RMSE 4.
  EXPECT_NEAR(eval->CurrentFitness(), 4.0, 1e-12);
}

// ------------------------------------------------------------ dataset -----

TEST(DatasetTest, CsvRoundTrip) {
  SyntheticConfig config;
  config.years = 2;
  config.train_years = 1;
  config.seed = 5;
  const RiverDataset dataset = GenerateNakdongLike(config);
  const CsvTable table = dataset.ToCsv();
  EXPECT_EQ(table.rows.size(), dataset.num_days);

  RiverDataset loaded;
  ASSERT_TRUE(RiverDataset::FromCsv(table, dataset.train_end, &loaded));
  EXPECT_EQ(loaded.num_days, dataset.num_days);
  EXPECT_EQ(loaded.train_end, dataset.train_end);
  for (int slot : ObservedVariableSlots()) {
    const auto s = static_cast<std::size_t>(slot);
    ASSERT_EQ(loaded.drivers[s].size(), dataset.drivers[s].size());
    EXPECT_DOUBLE_EQ(loaded.drivers[s][100], dataset.drivers[s][100]);
  }
  EXPECT_DOUBLE_EQ(loaded.observed_bphy[50], dataset.observed_bphy[50]);
}

TEST(DatasetTest, FromCsvRejectsBadSchema) {
  CsvTable table;
  table.column_names = {"day", "oops"};
  table.rows = {{0.0, 1.0}};
  RiverDataset dataset;
  EXPECT_FALSE(RiverDataset::FromCsv(table, 1, &dataset));
}

}  // namespace
}  // namespace gmr::river
