#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "common/csv.h"
#include "common/matrix.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"

namespace gmr {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, TruncatedGaussianClampsToBounds) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.TruncatedGaussian(0.0, 10.0, -1.0, 2.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(10, 6);
  ASSERT_EQ(sample.size(), 6u);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_LT(sample[i], 10u);
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      EXPECT_NE(sample[i], sample[j]);
    }
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ------------------------------------------------------------ metrics ----

TEST(MetricsTest, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(MetricsTest, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(Mae({0.0, 0.0}, {3.0, -4.0}), 3.5);
}

TEST(MetricsTest, RmseAtLeastMae) {
  Rng rng(5);
  std::vector<double> a(50), b(50);
  for (int i = 0; i < 50; ++i) {
    a[i] = rng.Uniform(-10, 10);
    b[i] = rng.Uniform(-10, 10);
  }
  EXPECT_GE(Rmse(a, b), Mae(a, b));
}

TEST(MetricsTest, NashSutcliffePerfectIsOne) {
  EXPECT_DOUBLE_EQ(NashSutcliffe({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(MetricsTest, NashSutcliffeMeanPredictorIsZero) {
  EXPECT_NEAR(NashSutcliffe({2, 2, 2}, {1, 2, 3}), 0.0, 1e-12);
}

TEST(MetricsTest, AicPenalizesParameters) {
  const double ll = -10.0;
  EXPECT_LT(Aic(ll, 2), Aic(ll, 5));
}

// ---------------------------------------------------------------- ulps ----

TEST(UlpTest, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(UlpDistance(1.5, 1.5), 0u);
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0u);  // signed zeros coincide
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(UlpDistance(inf, inf), 0u);
  EXPECT_EQ(UlpDistance(-inf, -inf), 0u);
}

TEST(UlpTest, AdjacentRepresentablesAreOneApart) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  const double down = std::nextafter(x, 0.0);
  EXPECT_EQ(UlpDistance(x, up), 1u);
  EXPECT_EQ(UlpDistance(up, x), 1u);  // symmetric
  EXPECT_EQ(UlpDistance(down, up), 2u);
  // Crossing zero counts the subnormals in between, not a huge bit gap.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(UlpDistance(-tiny, tiny), 2u);
  EXPECT_EQ(UlpDistance(0.0, tiny), 1u);
}

TEST(UlpTest, NanIsMaximallyDistant) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(UlpDistance(nan, 1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(UlpDistance(1.0, nan), std::numeric_limits<std::uint64_t>::max());
}

TEST(UlpTest, InfinityIsOneStepPastMaxDouble) {
  const double inf = std::numeric_limits<double>::infinity();
  const double max = std::numeric_limits<double>::max();
  EXPECT_EQ(UlpDistance(max, inf), 1u);
  EXPECT_EQ(UlpDistance(-max, -inf), 1u);
}

TEST(WithinUlpsTest, ExactAndToleratedAgreement) {
  EXPECT_TRUE(WithinUlps(2.0, 2.0, 0));
  EXPECT_TRUE(WithinUlps(0.0, -0.0, 0));
  const double up = std::nextafter(1.0, 2.0);
  EXPECT_FALSE(WithinUlps(1.0, up, 0));
  EXPECT_TRUE(WithinUlps(1.0, up, 1));
  EXPECT_TRUE(WithinUlps(1.0, up, 4));
}

TEST(WithinUlpsTest, NonFiniteRules) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(WithinUlps(nan, nan, 0));    // both-NaN agree (oracle use)
  EXPECT_TRUE(WithinUlps(inf, inf, 0));
  EXPECT_TRUE(WithinUlps(-inf, -inf, 0));
  EXPECT_FALSE(WithinUlps(inf, -inf, 1000));
  EXPECT_FALSE(WithinUlps(nan, 1.0, 1000));
  EXPECT_FALSE(WithinUlps(inf, 1.0, 1000));
  // A finite value one ULP below +inf's neighbour is still never "within"
  // of +inf: finite vs non-finite is a hard mismatch.
  EXPECT_FALSE(WithinUlps(std::numeric_limits<double>::max(), inf, 1000));
}

// -------------------------------------------------------------- stats ----

TEST(StatsTest, MeanVarianceStdDev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, StandardizerRoundTrip) {
  const std::vector<double> xs{1.0, 5.0, 9.0, -2.0};
  const Standardizer s = FitStandardizer(xs);
  for (double x : xs) EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-12);
}

TEST(StatsTest, InterpolationHitsSamplesExactly) {
  const std::vector<std::size_t> days{0, 4, 8};
  const std::vector<double> values{1.0, 5.0, 3.0};
  const auto series = LinearInterpolate(days, values, 10);
  ASSERT_EQ(series.size(), 10u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[4], 5.0);
  EXPECT_DOUBLE_EQ(series[8], 3.0);
  EXPECT_DOUBLE_EQ(series[2], 3.0);   // midpoint of 1..5
  EXPECT_DOUBLE_EQ(series[6], 4.0);   // midpoint of 5..3
  EXPECT_DOUBLE_EQ(series[9], 3.0);   // flat extrapolation
}

TEST(StatsTest, InterpolationFlatBeforeFirstSample) {
  const auto series = LinearInterpolate({3, 5}, {2.0, 4.0}, 8);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[2], 2.0);
}

/// Property: interpolated values always lie within the convex hull of the
/// sample values.
class InterpolationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InterpolationPropertyTest, WithinSampleHull) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t length = 50 + rng.UniformInt(std::uint64_t{100});
  std::vector<std::size_t> days;
  std::vector<double> values;
  std::size_t t = rng.UniformInt(std::uint64_t{5});
  double lo = 1e300;
  double hi = -1e300;
  while (t < length) {
    days.push_back(t);
    const double v = rng.Uniform(-100.0, 100.0);
    values.push_back(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    t += 1 + rng.UniformInt(std::uint64_t{13});
  }
  const auto series = LinearInterpolate(days, values, length);
  for (double v : series) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolationPropertyTest,
                         ::testing::Range(0, 20));

TEST(StatsTest, QuantileOrderStatistics) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

// ------------------------------------------------------------- matrix ----

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a.At(i, j) = v++;
  v = 1;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b.At(i, j) = v++;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 64.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(3);
  Matrix a(4, 6);
  for (auto& x : a.data()) x = rng.Uniform(-1, 1);
  const Matrix att = a.Transpose().Transpose();
  EXPECT_EQ(att.data(), a.data());
}

TEST(MatrixTest, IdentityIsMultiplicativeUnit) {
  Rng rng(9);
  Matrix a(3, 3);
  for (auto& x : a.data()) x = rng.Uniform(-5, 5);
  const Matrix i3 = Matrix::Identity(3);
  EXPECT_EQ(a.Multiply(i3).data(), a.data());
  EXPECT_EQ(i3.Multiply(a).data(), a.data());
}

TEST(MatrixTest, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve(a, {10, 9}, 0.0, &x));
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 1;  // eigenvalues 3 and -1
  std::vector<double> x;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}, 0.0, &x));
}

TEST(MatrixTest, LeastSquaresRecoversCoefficients) {
  Rng rng(21);
  const std::size_t n = 200;
  Matrix x(n, 3);
  std::vector<double> y(n);
  const double beta[3] = {2.0, -1.5, 0.25};
  for (std::size_t i = 0; i < n; ++i) {
    double target = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      x.At(i, j) = rng.Uniform(-2, 2);
      target += beta[j] * x.At(i, j);
    }
    y[i] = target;
  }
  std::vector<double> est;
  ASSERT_TRUE(LeastSquares(x, y, &est));
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(est[j], beta[j], 1e-6);
}

// ---------------------------------------------------------------- csv ----

TEST(CsvTest, WriteReadRoundTrip) {
  CsvTable table;
  table.column_names = {"a", "b", "c"};
  table.rows = {{1.0, 2.5, -3.0}, {4.25, 0.0, 1e6}};
  const std::string path = ::testing::TempDir() + "/gmr_csv_test.csv";
  ASSERT_TRUE(WriteCsv(path, table));
  CsvTable loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded));
  EXPECT_EQ(loaded.column_names, table.column_names);
  ASSERT_EQ(loaded.rows.size(), table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    for (std::size_t j = 0; j < table.rows[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.rows[i][j], table.rows[i][j]);
    }
  }
}

TEST(CsvTest, ColumnExtraction) {
  CsvTable table;
  table.column_names = {"x", "y"};
  table.rows = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(table.ColumnIndex("y"), 1);
  EXPECT_EQ(table.ColumnIndex("z"), -1);
  EXPECT_EQ(table.Column("y"), (std::vector<double>{10, 20, 30}));
}

TEST(CsvTest, ReadRejectsMissingFile) {
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv("/nonexistent/path/nope.csv", &table, &error));
  EXPECT_NE(error.find("/nonexistent/path/nope.csv"), std::string::npos);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

/// Writes raw text to a temp file and returns its path.
std::string WriteTempFile(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(CsvTest, ReadReportsFileLineAndField) {
  const std::string path =
      WriteTempFile("gmr_csv_bad_cell.csv", "a,b,c\n1,2,3\n4,abc,6\n");
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv(path, &table, &error));
  // The message pinpoints file, 1-based line, 1-based field, and the cell.
  EXPECT_NE(error.find(path + ":3"), std::string::npos) << error;
  EXPECT_NE(error.find("field 2"), std::string::npos) << error;
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;
  EXPECT_NE(error.find("not a number"), std::string::npos) << error;
}

TEST(CsvTest, ReadRejectsPartiallyNumericCell) {
  const std::string path =
      WriteTempFile("gmr_csv_partial.csv", "a\n1.5x\n");
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv(path, &table, &error));
  EXPECT_NE(error.find("'1.5x'"), std::string::npos) << error;
}

TEST(CsvTest, ReadRejectsFieldCountMismatch) {
  const std::string path =
      WriteTempFile("gmr_csv_ragged.csv", "a,b,c\n1,2,3\n1,2\n");
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv(path, &table, &error));
  EXPECT_NE(error.find(path + ":3"), std::string::npos) << error;
  EXPECT_NE(error.find("expected 3 fields, got 2"), std::string::npos)
      << error;
}

TEST(CsvTest, ReadRejectsEmptyFile) {
  const std::string path = WriteTempFile("gmr_csv_empty.csv", "");
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv(path, &table, &error));
  EXPECT_NE(error.find("empty file"), std::string::npos) << error;
}

TEST(CsvTest, ReadRejectsEmptyCell) {
  const std::string path =
      WriteTempFile("gmr_csv_empty_cell.csv", "a,b\n,2\n");
  CsvTable table;
  std::string error;
  EXPECT_FALSE(ReadCsv(path, &table, &error));
  EXPECT_NE(error.find("field 1 ('')"), std::string::npos) << error;
}

TEST(CsvTest, ReadTrimsCarriageReturns) {
  const std::string path =
      WriteTempFile("gmr_csv_crlf.csv", "a,b\r\n1,2\r\n3,4\r\n");
  CsvTable table;
  std::string error;
  ASSERT_TRUE(ReadCsv(path, &table, &error)) << error;
  EXPECT_EQ(table.column_names, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 4.0);
}

}  // namespace
}  // namespace gmr
