#include <gtest/gtest.h>

#include <cmath>

#include "baselines/arimax.h"
#include "baselines/lstm.h"
#include "common/rng.h"
#include "common/stats.h"

namespace gmr::baselines {
namespace {

// -------------------------------------------------------------- ARIMAX ----

TEST(ArimaxTest, RecoversArWithExogenousCoefficients) {
  // y_t = 1.0 + 0.6 y_{t-1} - 0.3 y_{t-2} + 2.0 x_t + noise
  Rng rng(3);
  const std::size_t n = 1200;
  std::vector<double> x(n);
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) x[t] = rng.Uniform(-1, 1);
  for (std::size_t t = 2; t < n; ++t) {
    y[t] = 1.0 + 0.6 * y[t - 1] - 0.3 * y[t - 2] + 2.0 * x[t] +
           rng.Gaussian(0.0, 0.05);
  }
  ArimaxConfig config;
  const ArimaxResult result = FitArimax(y, {x}, 1000, config);
  ASSERT_GE(result.p, 2);
  // coefficients = [c, phi..., theta..., beta]. Exogenous regressors are
  // standardized internally, so the fitted beta is 2.0 * std(x_train).
  EXPECT_NEAR(result.coefficients[1], 0.6, 0.1);
  EXPECT_NEAR(result.coefficients[2], -0.3, 0.1);
  const std::vector<double> x_train(x.begin(), x.begin() + 1000);
  EXPECT_NEAR(result.coefficients.back(), 2.0 * StdDev(x_train), 0.1);
  // One-step-ahead test error should be close to the noise floor.
  EXPECT_LT(result.test_rmse, 0.15);
  EXPECT_LE(result.test_mae, result.test_rmse);
}

TEST(ArimaxTest, AicPrefersParsimoniousOrder) {
  // Pure AR(1) data: the order search should not pick the maximum p.
  Rng rng(7);
  const std::size_t n = 800;
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 1; t < n; ++t) {
    y[t] = 0.8 * y[t - 1] + rng.Gaussian(0.0, 1.0);
  }
  ArimaxConfig config;
  const ArimaxResult result = FitArimax(y, {}, 600, config);
  // AIC may admit extra lags, but their fitted weights must be noise-level
  // while the true phi_1 dominates.
  EXPECT_NEAR(result.coefficients[1], 0.8, 0.1);
  for (int i = 2; i <= result.p; ++i) {
    EXPECT_LT(std::fabs(result.coefficients[static_cast<std::size_t>(i)]),
              0.2)
        << "phi_" << i;
  }
  EXPECT_LT(result.test_rmse, 1.3);
}

TEST(ArimaxTest, TestPredictionsHaveTestLength) {
  Rng rng(9);
  const std::size_t n = 300;
  std::vector<double> y(n);
  for (auto& v : y) v = rng.Uniform(0, 1);
  const ArimaxResult result = FitArimax(y, {}, 200, ArimaxConfig{});
  EXPECT_EQ(result.test_predictions.size(), n - 200);
}

TEST(ArimaxTest, UninformativeExogenousGetsSmallWeight) {
  Rng rng(11);
  const std::size_t n = 1000;
  std::vector<double> noise_feature(n);
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) noise_feature[t] = rng.Uniform(-1, 1);
  for (std::size_t t = 1; t < n; ++t) {
    y[t] = 0.9 * y[t - 1] + rng.Gaussian(0.0, 0.3);
  }
  const ArimaxResult result = FitArimax(y, {noise_feature}, 800,
                                        ArimaxConfig{});
  EXPECT_LT(std::fabs(result.coefficients.back()), 0.1);
}

// ---------------------------------------------------------------- LSTM ----

TEST(LstmTest, LearnsLinearNextStepMap) {
  // Target: y_{t+1} = 0.5 x1_t - 0.25 x2_t + 1, fully determined by the
  // current features. A tiny LSTM should fit this nearly exactly.
  Rng rng(5);
  const std::size_t n = 600;
  std::vector<std::vector<double>> features(2, std::vector<double>(n));
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    features[0][t] = rng.Uniform(-2, 2);
    features[1][t] = rng.Uniform(-2, 2);
  }
  for (std::size_t t = 0; t + 1 < n; ++t) {
    y[t + 1] = 0.5 * features[0][t] - 0.25 * features[1][t] + 1.0;
  }
  LstmConfig config;
  config.epochs = 60;
  config.window = 25;
  config.seed = 3;
  const LstmResult result = TrainAndEvaluateLstm(features, y, 450, config);
  // Target std is ~1.1; the fit must be far below it.
  EXPECT_LT(result.train_rmse, 0.35);
  EXPECT_LT(result.best_test_rmse, 0.4);
  EXPECT_EQ(result.curve.size(), 60u);
}

TEST(LstmTest, LossDecreasesOverTraining) {
  Rng rng(7);
  const std::size_t n = 400;
  std::vector<std::vector<double>> features(1, std::vector<double>(n));
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    features[0][t] = std::sin(0.1 * static_cast<double>(t));
    y[t] = 3.0 * features[0][t] + rng.Gaussian(0.0, 0.05);
  }
  LstmConfig config;
  config.epochs = 40;
  config.seed = 11;
  const LstmResult result = TrainAndEvaluateLstm(features, y, 300, config);
  ASSERT_GE(result.curve.size(), 10u);
  EXPECT_LT(result.curve.back().first, result.curve.front().first);
}

TEST(LstmTest, DeterministicForSameSeed) {
  Rng rng(13);
  const std::size_t n = 200;
  std::vector<std::vector<double>> features(1, std::vector<double>(n));
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    features[0][t] = rng.Uniform(-1, 1);
    y[t] = rng.Uniform(0, 1);
  }
  LstmConfig config;
  config.epochs = 5;
  config.seed = 21;
  const LstmResult a = TrainAndEvaluateLstm(features, y, 150, config);
  const LstmResult b = TrainAndEvaluateLstm(features, y, 150, config);
  EXPECT_DOUBLE_EQ(a.test_rmse, b.test_rmse);
  EXPECT_DOUBLE_EQ(a.train_rmse, b.train_rmse);
}

TEST(LstmTest, HiddenSizeIsCapped) {
  // 100 input features with a cap of 8 must still train (smoke test that
  // the cap path works).
  Rng rng(17);
  const std::size_t n = 120;
  std::vector<std::vector<double>> features(100, std::vector<double>(n));
  std::vector<double> y(n);
  for (auto& series : features) {
    for (auto& v : series) v = rng.Uniform(-1, 1);
  }
  for (auto& v : y) v = rng.Uniform(0, 1);
  LstmConfig config;
  config.epochs = 2;
  config.hidden_cap = 8;
  config.window = 20;
  const LstmResult result = TrainAndEvaluateLstm(features, y, 90, config);
  EXPECT_TRUE(std::isfinite(result.test_rmse));
}

}  // namespace
}  // namespace gmr::baselines
