#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/eval.h"
#include "expr/print.h"
#include "tag/derivation.h"
#include "tag/generate.h"
#include "tag/grammar.h"
#include "tag/tag_tree.h"

namespace gmr::tag {
namespace {

namespace e = gmr::expr;

// Builds the paper's Figure 3 alpha tree: B_Phy * mu_Phy with all interior
// nodes labeled Exp (variable slots: 0 = B_Phy, 1 = mu_Phy).
TagNodePtr Figure3Alpha() {
  std::vector<TagNodePtr> children;
  children.push_back(LeafNode(e::Variable(0, "B_Phy")));
  children.push_back(LeafNode(e::Variable(1, "mu_Phy")));
  return OperatorNode(kExpSymbol, e::NodeKind::kMul, std::move(children));
}

// Figure 3(b) beta tree: Exp -> Exp* - R(slot).
TagNodePtr Figure3Beta() {
  std::vector<TagNodePtr> children;
  children.push_back(FootNode(kExpSymbol));
  children.push_back(SlotNode("R"));
  return OperatorNode(kExpSymbol, e::NodeKind::kSub, std::move(children));
}

// ---------------------------------------------------------- TagNode -------

TEST(TagTreeTest, CloneIsDeepAndEqual) {
  TagNodePtr original = Figure3Alpha();
  TagNodePtr copy = original->Clone();
  EXPECT_NE(original.get(), copy.get());
  EXPECT_EQ(copy->NodeCount(), original->NodeCount());
  EXPECT_EQ(copy->kind, original->kind);
  EXPECT_NE(original->children[0].get(), copy->children[0].get());
}

TEST(TagTreeTest, FromExprRoundTripsThroughLowering) {
  const e::ExprPtr source =
      e::Add(e::Mul(e::Variable(0, "x"), e::Constant(2.0)),
             e::Parameter(1, "C"));
  TagNodePtr tree = FromExpr(source, kExpSymbol);
  const auto equations = LowerToExpressions(*tree);
  ASSERT_EQ(equations.size(), 1u);
  EXPECT_TRUE(e::StructurallyEqual(*equations[0], *source));
}

TEST(TagTreeTest, SystemNodeLowersToMultipleEquations) {
  std::vector<TagNodePtr> eqs;
  eqs.push_back(FromExpr(e::Constant(1.0), kExpSymbol));
  eqs.push_back(FromExpr(e::Constant(2.0), kExpSymbol));
  TagNodePtr system = SystemNode(std::move(eqs));
  const auto equations = LowerToExpressions(*system);
  ASSERT_EQ(equations.size(), 2u);
  EXPECT_DOUBLE_EQ(equations[0]->value(), 1.0);
  EXPECT_DOUBLE_EQ(equations[1]->value(), 2.0);
}

TEST(TagTreeTest, IsCompletedDetectsSlotsAndFeet) {
  EXPECT_TRUE(IsCompleted(*Figure3Alpha()));
  EXPECT_FALSE(IsCompleted(*Figure3Beta()));
  TagNodePtr slot_only = SlotNode("R");
  EXPECT_FALSE(IsCompleted(*slot_only));
}

// ----------------------------------------------------- ElementaryTree -----

TEST(ElementaryTreeTest, IndexesAdjoinableAndSlots) {
  ElementaryTree alpha("fig3a", Figure3Alpha());
  EXPECT_FALSE(alpha.IsAuxiliary());
  ASSERT_EQ(alpha.adjoinable_labels().size(), 1u);  // the root Exp node
  EXPECT_EQ(alpha.adjoinable_labels()[0], kExpSymbol);
  EXPECT_TRUE(alpha.slot_labels().empty());

  ElementaryTree beta("fig3b", Figure3Beta());
  EXPECT_TRUE(beta.IsAuxiliary());
  ASSERT_EQ(beta.slot_labels().size(), 1u);
  EXPECT_EQ(beta.slot_labels()[0], "R");
}

TEST(ElementaryTreeTest, InstantiateTracksPointers) {
  ElementaryTree beta("fig3b", Figure3Beta());
  ElementaryTree::Instance instance = beta.Instantiate();
  ASSERT_EQ(instance.adjoinable.size(), 1u);
  ASSERT_EQ(instance.slots.size(), 1u);
  ASSERT_NE(instance.foot, nullptr);
  EXPECT_EQ(instance.foot->label, kExpSymbol);
}

// ------------------------------------------------- Adjoin/Substitute ------

TEST(AdjoinTest, PaperFigure3Example) {
  // Adjoining Exp* - R into the root of B_Phy * mu_Phy, then substituting
  // 1.5, must yield B_Phy * mu_Phy - 1.5 ... adjunction at the ROOT wraps
  // the whole product: (B_Phy * mu_Phy) - 1.5.
  ElementaryTree alpha("fig3a", Figure3Alpha());
  ElementaryTree beta("fig3b", Figure3Beta());

  ElementaryTree::Instance tree = alpha.Instantiate();
  ElementaryTree::Instance aux = beta.Instantiate();
  TagNode* slot = aux.slots[0];
  Adjoin(&tree.root, tree.adjoinable[0], std::move(aux));
  SubstituteLexeme(slot, e::Constant(1.5));

  ASSERT_TRUE(IsCompleted(*tree.root));
  const auto equations = LowerToExpressions(*tree.root);
  ASSERT_EQ(equations.size(), 1u);
  EXPECT_EQ(e::ToString(*equations[0]), "B_Phy * mu_Phy - 1.5");

  std::vector<double> vars{2.0, 3.0};
  e::EvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = vars.size();
  EXPECT_DOUBLE_EQ(e::EvalExpr(*equations[0], ctx), 2.0 * 3.0 - 1.5);
}

TEST(AdjoinTest, AdjoiningAtInteriorNode) {
  // Alpha: (x + y) * z with Exp labels; adjoin Exp* - R at the (x + y) node.
  std::vector<TagNodePtr> sum_children;
  sum_children.push_back(LeafNode(e::Variable(0, "x")));
  sum_children.push_back(LeafNode(e::Variable(1, "y")));
  TagNodePtr sum =
      OperatorNode(kExpSymbol, e::NodeKind::kAdd, std::move(sum_children));
  std::vector<TagNodePtr> top_children;
  top_children.push_back(std::move(sum));
  top_children.push_back(LeafNode(e::Variable(2, "z")));
  ElementaryTree alpha(
      "a", OperatorNode(kExpSymbol, e::NodeKind::kMul,
                        std::move(top_children)));
  ASSERT_EQ(alpha.adjoinable_labels().size(), 2u);  // root and the sum

  ElementaryTree beta("b", Figure3Beta());
  ElementaryTree::Instance tree = alpha.Instantiate();
  ElementaryTree::Instance aux = beta.Instantiate();
  TagNode* slot = aux.slots[0];
  // adjoinable[1] is the interior (x + y) node (preorder).
  Adjoin(&tree.root, tree.adjoinable[1], std::move(aux));
  SubstituteLexeme(slot, e::Constant(4.0));
  const auto equations = LowerToExpressions(*tree.root);
  EXPECT_EQ(e::ToString(*equations[0]), "(x + y - 4) * z");
}

// ----------------------------------------------------------- Grammar ------

Grammar MakeToyGrammar() {
  Grammar grammar;
  grammar.AddAlphaTree(ElementaryTree("alpha", Figure3Alpha()));
  grammar.AddBetaTree(ElementaryTree("beta", Figure3Beta()));
  grammar.SetSlotSpec("R", SlotSpec{0.0, 1.0});
  return grammar;
}

TEST(GrammarTest, LookupByRootLabel) {
  Grammar grammar = MakeToyGrammar();
  EXPECT_EQ(grammar.num_alpha_trees(), 1u);
  EXPECT_EQ(grammar.num_beta_trees(), 1u);
  EXPECT_TRUE(grammar.HasCompatibleBeta(kExpSymbol));
  EXPECT_FALSE(grammar.HasCompatibleBeta("Nope"));
  EXPECT_EQ(grammar.BetasWithRootLabel(kExpSymbol).size(), 1u);
}

TEST(GrammarTest, SlotSpecDefaultsAndOverrides) {
  Grammar grammar = MakeToyGrammar();
  EXPECT_DOUBLE_EQ(grammar.slot_spec("R").lo, 0.0);
  EXPECT_DOUBLE_EQ(grammar.slot_spec("R").hi, 1.0);
  grammar.SetSlotSpec("R", SlotSpec{-2.0, 2.0});
  EXPECT_DOUBLE_EQ(grammar.slot_spec("R").lo, -2.0);
  EXPECT_DOUBLE_EQ(grammar.slot_spec("unset").hi, 1.0);
}

// -------------------------------------------------------- Derivation ------

TEST(DerivationTest, ExpandChainOfAdjunctions) {
  Grammar grammar = MakeToyGrammar();
  // root (alpha), one child adjoined at address 0, grandchild at the
  // child's root address. Result: ((B*mu - r1) - r2) depending on
  // addresses; the child beta has adjoinable nodes too.
  auto root = std::make_unique<DerivationNode>();
  root->tree_index = 0;
  auto child = std::make_unique<DerivationNode>();
  child->tree_index = 0;
  child->lexemes = {0.25};
  auto grandchild = std::make_unique<DerivationNode>();
  grandchild->tree_index = 0;
  grandchild->lexemes = {0.5};
  child->children.push_back({0, std::move(grandchild)});
  root->children.push_back({0, std::move(child)});

  std::string error;
  ASSERT_TRUE(Validate(grammar, *root, &error)) << error;
  const auto equations = ExpandToExpressions(grammar, *root);
  ASSERT_EQ(equations.size(), 1u);
  // Child adjoins at alpha root: (B*mu) - 0.25. Grandchild adjoins at the
  // child's own root node: ((B*mu) - 0.25) - 0.5.
  EXPECT_EQ(e::ToString(*equations[0]), "B_Phy * mu_Phy - 0.25 - 0.5");
}

TEST(DerivationTest, ValidateRejectsBadAddress) {
  Grammar grammar = MakeToyGrammar();
  auto root = std::make_unique<DerivationNode>();
  root->tree_index = 0;
  auto child = std::make_unique<DerivationNode>();
  child->tree_index = 0;
  child->lexemes = {0.1};
  root->children.push_back({5, std::move(child)});  // out of range
  std::string error;
  EXPECT_FALSE(Validate(grammar, *root, &error));
}

TEST(DerivationTest, ValidateRejectsDuplicateAddress) {
  Grammar grammar = MakeToyGrammar();
  auto root = std::make_unique<DerivationNode>();
  root->tree_index = 0;
  for (int i = 0; i < 2; ++i) {
    auto child = std::make_unique<DerivationNode>();
    child->tree_index = 0;
    child->lexemes = {0.1};
    root->children.push_back({0, std::move(child)});
  }
  std::string error;
  EXPECT_FALSE(Validate(grammar, *root, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(DerivationTest, ValidateRejectsWrongLexemeCount) {
  Grammar grammar = MakeToyGrammar();
  auto root = std::make_unique<DerivationNode>();
  root->tree_index = 0;
  auto child = std::make_unique<DerivationNode>();
  child->tree_index = 0;  // beta has 1 slot, no lexemes given
  root->children.push_back({0, std::move(child)});
  std::string error;
  EXPECT_FALSE(Validate(grammar, *root, &error));
}

TEST(DerivationTest, CloneIsIndependent) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(5);
  DerivationPtr root = GrowRandom(grammar, 0, 5, rng);
  DerivationPtr copy = root->Clone();
  EXPECT_EQ(copy->NodeCount(), root->NodeCount());
  // Mutating the copy must not affect the original.
  if (!copy->children.empty()) {
    copy->children.clear();
    EXPECT_GT(root->NodeCount(), copy->NodeCount());
  }
}

// ----------------------------------------------------------- Generate -----

class GeneratePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratePropertyTest, GrowRandomProducesValidDerivations) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const std::size_t target = 2 + rng.UniformInt(std::uint64_t{10});
  DerivationPtr root = GrowRandom(grammar, 0, target, rng);
  std::string error;
  EXPECT_TRUE(Validate(grammar, *root, &error)) << error;
  EXPECT_GE(root->NodeCount(), 1u);
  const auto equations = ExpandToExpressions(grammar, *root);
  ASSERT_EQ(equations.size(), 1u);
}

TEST_P(GeneratePropertyTest, InsertAndDeletePreserveValidity) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 7);
  DerivationPtr root = GrowRandom(grammar, 0, 4, rng);
  for (int step = 0; step < 20; ++step) {
    if (rng.Bernoulli(0.5)) {
      InsertRandomBeta(grammar, root.get(), rng);
    } else {
      DeleteRandomLeaf(root.get(), rng);
    }
    std::string error;
    ASSERT_TRUE(Validate(grammar, *root, &error)) << error;
    ExpandToExpressions(grammar, *root);  // must not abort
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratePropertyTest, ::testing::Range(0, 25));

TEST(GenerateTest, DeleteOnRootOnlyTreeFails) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(3);
  DerivationPtr root = NewSeedDerivation(grammar, 0, rng);
  EXPECT_FALSE(DeleteRandomLeaf(root.get(), rng));
}

TEST(GenerateTest, OpenSitesShrinkWhenOccupied) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(9);
  DerivationPtr root = NewSeedDerivation(grammar, 0, rng);
  const auto before = CollectOpenSites(grammar, root.get());
  ASSERT_EQ(before.size(), 1u);  // alpha has one adjoinable node
  ASSERT_TRUE(InsertRandomBeta(grammar, root.get(), rng));
  const auto after = CollectOpenSites(grammar, root.get());
  // The alpha address is now occupied, but the new beta node contributes
  // its own adjoinable root.
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after[0].node, root.get());
}

TEST(GenerateTest, GrowRandomSubtreeMatchesLabel) {
  Grammar grammar = MakeToyGrammar();
  Rng rng(11);
  DerivationPtr subtree = GrowRandomSubtree(grammar, kExpSymbol, 3, rng);
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(grammar.beta(subtree->tree_index).root_label(), kExpSymbol);
  EXPECT_EQ(GrowRandomSubtree(grammar, "Missing", 3, rng), nullptr);
}

TEST(GenerateTest, LexemesDrawnWithinSlotSpec) {
  Grammar grammar = MakeToyGrammar();
  grammar.SetSlotSpec("R", SlotSpec{2.0, 3.0});
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    DerivationPtr node = MakeRandomNode(grammar, 0, /*is_root=*/false, rng);
    ASSERT_EQ(node->lexemes.size(), 1u);
    EXPECT_GE(node->lexemes[0], 2.0);
    EXPECT_LT(node->lexemes[0], 3.0);
  }
}

}  // namespace
}  // namespace gmr::tag
