// Additional TAG3P engine coverage: configuration paths (speedups on/off,
// elite polish, size bounds, operator probability corners) and the
// interaction between the engine and the river problem, complementing the
// toy-problem tests of gp_test.cc.

#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.h"
#include "core/gmr.h"
#include "core/river_grammar.h"
#include "gp/tag3p.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "tag/generate.h"

namespace gmr {
namespace {

river::RiverDataset TinySynthetic() {
  river::SyntheticConfig config;
  config.years = 2;
  config.train_years = 1;
  config.seed = 3;
  return river::GenerateNakdongLike(config);
}

gp::Tag3pConfig SmallConfig(std::uint64_t seed) {
  gp::Tag3pConfig config;
  config.population_size = 12;
  config.max_generations = 4;
  config.local_search_steps = 1;
  config.elite_polish_steps = 4;
  config.sigma_rampdown_generations = 2;
  config.seed = seed;
  return config;
}

TEST(EngineConfigTest, RunsWithAllSpeedupCombinations) {
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  for (int mask = 0; mask < 8; ++mask) {
    gp::Tag3pConfig config = SmallConfig(5);
    config.speedups.tree_caching = (mask & 1) != 0;
    config.speedups.short_circuiting = (mask & 2) != 0;
    config.speedups.runtime_compilation = (mask & 4) != 0;
    config.seed_alpha_index = knowledge.seed_alpha_index;
    gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                           config);
    const gp::Tag3pResult result = engine.Run();
    EXPECT_TRUE(std::isfinite(result.best.fitness)) << "mask " << mask;
    EXPECT_EQ(result.history.size(), 4u) << "mask " << mask;
  }
}

TEST(EngineConfigTest, ElitePolishNeverWorsensBest) {
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  auto best_with_polish = [&](int polish_steps) {
    gp::Tag3pConfig config = SmallConfig(9);
    config.elite_polish_steps = polish_steps;
    config.seed_alpha_index = knowledge.seed_alpha_index;
    gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                           config);
    return engine.Run().best.fitness;
  };
  // Polish is hill climbing on the incumbent: different random streams make
  // the runs incomparable step-by-step, but polish must produce a finite
  // result and typically helps; at minimum both configurations work.
  EXPECT_TRUE(std::isfinite(best_with_polish(0)));
  EXPECT_TRUE(std::isfinite(best_with_polish(20)));
}

TEST(EngineConfigTest, SizeBoundsAreRespectedInFinalPopulationBest) {
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  gp::Tag3pConfig config = SmallConfig(13);
  config.bounds = gp::SizeBounds{2, 9};
  config.seed_alpha_index = knowledge.seed_alpha_index;
  gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                         config);
  const gp::Tag3pResult result = engine.Run();
  EXPECT_GE(result.best.Size(), 1u);
  EXPECT_LE(result.best.Size(), 9u);
  std::string error;
  EXPECT_TRUE(tag::Validate(knowledge.grammar, *result.best.genotype,
                            &error))
      << error;
}

TEST(EngineConfigTest, ReplicationOnlyConfigStillRuns) {
  // Degenerate operator probabilities: everything falls through to
  // replication; the engine must still finish and return the best seed.
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  gp::Tag3pConfig config = SmallConfig(17);
  config.p_crossover = 0.0;
  config.p_subtree_mutation = 0.0;
  config.p_gaussian_mutation = 0.0;
  config.local_search_steps = 0;
  config.elite_polish_steps = 0;
  config.seed_alpha_index = knowledge.seed_alpha_index;
  gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                         config);
  const gp::Tag3pResult result = engine.Run();
  EXPECT_TRUE(std::isfinite(result.best.fitness));
}

TEST(EngineConfigTest, BestFitnessMatchesIndependentFullEvaluation) {
  // The fitness the engine reports for its best individual must agree with
  // an independent full evaluation of the same phenotype (the best is
  // always fully evaluated under ES because it defines bestPrevFull).
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  gp::Tag3pConfig config = SmallConfig(21);
  config.speedups.tree_caching = true;
  config.speedups.short_circuiting = true;
  config.speedups.runtime_compilation = true;
  config.seed_alpha_index = knowledge.seed_alpha_index;
  gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                         config);
  const gp::Tag3pResult result = engine.Run();

  gp::SpeedupConfig plain;
  plain.runtime_compilation = true;
  gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, plain);
  const double full = evaluator.EvaluateFull(result.best);
  // Same bytecode-VM backend on both sides, so a small ULP budget replaces
  // the old absolute 1e-9 tolerance (which scales badly with fitness
  // magnitude).
  EXPECT_TRUE(WithinUlps(result.best.fitness, full, 16))
      << result.best.fitness << " vs " << full << " (ulps "
      << UlpDistance(result.best.fitness, full) << ")";
}

TEST(EngineConfigTest, RiverRunKeepsGenotypesValid) {
  const river::RiverDataset dataset = TinySynthetic();
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  core::GmrConfig config;
  config.tag3p = SmallConfig(23);
  const core::GmrRunResult result =
      core::RunGmr(dataset, knowledge, config);
  std::string error;
  EXPECT_TRUE(tag::Validate(knowledge.grammar, *result.best.genotype,
                            &error))
      << error;
  // Parameters must stay inside the Table III exploration bounds.
  for (std::size_t i = 0; i < knowledge.priors.size(); ++i) {
    EXPECT_GE(result.best.parameters[i], knowledge.priors[i].lo);
    EXPECT_LE(result.best.parameters[i], knowledge.priors[i].hi);
  }
}

}  // namespace
}  // namespace gmr
