#include <gtest/gtest.h>

#include <cmath>

#include "calibrate/methods.h"

namespace gmr::calibrate {
namespace {

/// Shifted sphere in 4 dimensions: global minimum 0 at the offset point.
struct SphereProblem {
  BoxBounds bounds;
  std::vector<double> optimum;
  std::vector<double> initial;
  std::size_t evaluations = 0;

  SphereProblem() {
    bounds.lo = {-2.0, 0.0, 10.0, -5.0};
    bounds.hi = {2.0, 1.0, 20.0, 5.0};
    optimum = {0.7, 0.25, 13.0, -2.5};
    initial = {-1.0, 0.9, 19.0, 4.0};
  }

  Objective MakeObjective() {
    return [this](const std::vector<double>& x) {
      ++evaluations;
      double sum = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - optimum[i];
        sum += d * d;
      }
      return sum;
    };
  }

  double InitialValue() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < initial.size(); ++i) {
      const double d = initial[i] - optimum[i];
      sum += d * d;
    }
    return sum;
  }
};

class CalibratorSuite : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Calibrator> MakeCalibrator() const {
    auto all = AllCalibrators();
    return std::move(all[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(CalibratorSuite, ImprovesOnSphere) {
  SphereProblem problem;
  const auto calibrator = MakeCalibrator();
  Rng rng(13);
  const CalibrationResult result =
      calibrator->Calibrate(problem.MakeObjective(), problem.bounds,
                            problem.initial, /*budget=*/1500, rng);
  EXPECT_LT(result.best_objective, 0.5 * problem.InitialValue())
      << calibrator->name();
  // All eleven methods should get at least near the optimum on a smooth
  // bowl.
  EXPECT_LT(result.best_objective, 5.0) << calibrator->name();
}

TEST_P(CalibratorSuite, RespectsBudget) {
  SphereProblem problem;
  const auto calibrator = MakeCalibrator();
  Rng rng(17);
  const CalibrationResult result = calibrator->Calibrate(
      problem.MakeObjective(), problem.bounds, problem.initial, 300, rng);
  EXPECT_LE(problem.evaluations, 300u) << calibrator->name();
  EXPECT_LE(result.evaluations, 300u) << calibrator->name();
  EXPECT_GE(result.evaluations, 10u) << calibrator->name();
}

TEST_P(CalibratorSuite, StaysWithinBounds) {
  SphereProblem problem;
  const auto calibrator = MakeCalibrator();
  bool violated = false;
  Objective guard = [&](const std::vector<double>& x) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < problem.bounds.lo[i] - 1e-12 ||
          x[i] > problem.bounds.hi[i] + 1e-12) {
        violated = true;
      }
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - problem.optimum[i];
      sum += d * d;
    }
    return sum;
  };
  Rng rng(19);
  calibrator->Calibrate(guard, problem.bounds, problem.initial, 500, rng);
  EXPECT_FALSE(violated) << calibrator->name();
}

TEST_P(CalibratorSuite, DeterministicForSameSeed) {
  SphereProblem p1;
  SphereProblem p2;
  const auto calibrator = MakeCalibrator();
  Rng rng1(23);
  Rng rng2(23);
  const auto a = calibrator->Calibrate(p1.MakeObjective(), p1.bounds,
                                       p1.initial, 400, rng1);
  const auto b = calibrator->Calibrate(p2.MakeObjective(), p2.bounds,
                                       p2.initial, 400, rng2);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective) << calibrator->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CalibratorSuite, ::testing::Range(0, 11),
    [](const ::testing::TestParamInfo<int>& info) {
      const auto all = AllCalibrators();
      std::string name = all[static_cast<std::size_t>(info.param)]->name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CalibratorTest, AllCalibratorsHaveDistinctNames) {
  const auto all = AllCalibrators();
  ASSERT_EQ(all.size(), 11u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_STRNE(all[i]->name(), all[j]->name());
    }
  }
}

TEST(CalibratorTest, BoundsFromPriors) {
  gp::ParameterPriors priors{{"a", 0.5, 0.0, 1.0}, {"b", 10.0, 5.0, 15.0}};
  const BoxBounds bounds = BoundsFromPriors(priors);
  EXPECT_EQ(bounds.lo, (std::vector<double>{0.0, 5.0}));
  EXPECT_EQ(bounds.hi, (std::vector<double>{1.0, 15.0}));
  EXPECT_EQ(bounds.dim(), 2u);
}

TEST(CalibratorTest, BudgetedObjectiveTracksIncumbent) {
  Objective objective = [](const std::vector<double>& x) { return x[0]; };
  BudgetedObjective f(&objective, 3);
  f({5.0});
  f({2.0});
  f({7.0});
  EXPECT_TRUE(f.Exhausted());
  EXPECT_DOUBLE_EQ(f.best_f(), 2.0);
  EXPECT_EQ(f.best_x(), (std::vector<double>{2.0}));
  // Past the budget, calls return a sentinel and do not evaluate.
  EXPECT_GE(f({0.0}), 1e299);
  EXPECT_DOUBLE_EQ(f.best_f(), 2.0);
}

TEST(CalibratorTest, ActiveMaskFreezesInactiveDimensions) {
  // Dimensions 2 and 3 are marked inactive (per the activity pass):
  // the method searches only the 2-D active subspace, the frozen slots
  // come back exactly at their initial values, and the frozen slots never
  // reach the objective with any other value.
  SphereProblem sphere;
  CalibrationProblem problem;
  problem.bounds = sphere.bounds;
  problem.initial = sphere.initial;
  problem.active = {1, 1, 0, 0};
  const Objective inner = sphere.MakeObjective();
  problem.objective = [&](const std::vector<double>& x) {
    EXPECT_EQ(x.size(), 4u);
    EXPECT_DOUBLE_EQ(x[2], sphere.initial[2]);
    EXPECT_DOUBLE_EQ(x[3], sphere.initial[3]);
    return inner(x);
  };
  CalibrationConfig config;
  config.budget = 400;
  config.seed = 7;
  const auto methods = AllCalibrators();
  const CalibrationResult result =
      gmr::calibrate::Run(*methods[0], config, problem);
  ASSERT_EQ(result.best_parameters.size(), 4u);
  EXPECT_DOUBLE_EQ(result.best_parameters[2], sphere.initial[2]);
  EXPECT_DOUBLE_EQ(result.best_parameters[3], sphere.initial[3]);
  // The active dimensions still improve on the start point's slice.
  const double start = problem.objective(sphere.initial);
  EXPECT_LT(result.best_objective, start);
}

TEST(CalibratorTest, MleConvergesTightlyOnSmoothBowl) {
  // Nelder-Mead should reach far higher precision than the samplers.
  SphereProblem problem;
  MleCalibrator mle;
  Rng rng(29);
  const auto result = mle.Calibrate(problem.MakeObjective(), problem.bounds,
                                    problem.initial, 2000, rng);
  EXPECT_LT(result.best_objective, 1e-6);
}

}  // namespace
}  // namespace gmr::calibrate
