#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::expr {
namespace {

ExprPtr RandomTree(Rng& rng, int depth, int num_vars, int num_params) {
  if (depth <= 1 || rng.Bernoulli(0.3)) {
    const double dice = rng.Uniform();
    if (dice < 0.4) return Variable(rng.UniformInt(0, num_vars - 1), "");
    if (dice < 0.6) return Parameter(rng.UniformInt(0, num_params - 1), "");
    return Constant(rng.Uniform(-5, 5));
  }
  static const NodeKind kBinary[] = {NodeKind::kAdd, NodeKind::kSub,
                                     NodeKind::kMul, NodeKind::kDiv,
                                     NodeKind::kMin, NodeKind::kMax};
  static const NodeKind kUnary[] = {NodeKind::kNeg, NodeKind::kLog,
                                    NodeKind::kExp};
  if (rng.Bernoulli(0.25)) {
    return MakeUnary(kUnary[rng.UniformInt(0, 2)],
                     RandomTree(rng, depth - 1, num_vars, num_params));
  }
  return MakeBinary(kBinary[rng.UniformInt(0, 5)],
                    RandomTree(rng, depth - 1, num_vars, num_params),
                    RandomTree(rng, depth - 1, num_vars, num_params));
}

TEST(JitTest, SourceGenerationMentionsSlotsAndKernels) {
  const ExprPtr e =
      Div(Add(Variable(2, ""), Parameter(1, "")), Log(Constant(3.0)));
  const std::string source = GenerateCSource(*e);
  EXPECT_NE(source.find("v[2]"), std::string::npos);
  EXPECT_NE(source.find("p[1]"), std::string::npos);
  EXPECT_NE(source.find("gmr_pdiv"), std::string::npos);
  EXPECT_NE(source.find("gmr_plog"), std::string::npos);
  EXPECT_NE(source.find("double gmr_eval"), std::string::npos);
}

TEST(JitTest, MatchesInterpreterOnRiverEquation) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  const auto equation = river::PhytoplanktonDerivative();
  const auto program = JitProgram::Compile(*equation, &error);
  ASSERT_NE(program, nullptr) << error;

  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> vars(river::kNumVariables);
    for (double& v : vars) v = rng.Uniform(0.01, 30.0);
    EvalContext ctx{vars.data(), vars.size(), params.data(), params.size()};
    EXPECT_DOUBLE_EQ(program->Run(ctx), EvalExpr(*equation, ctx));
  }
}

TEST(JitTest, MatchesInterpreterOnRandomTrees) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const ExprPtr tree = RandomTree(rng, 5, 3, 2);
    std::string error;
    const auto program = JitProgram::Compile(*tree, &error);
    ASSERT_NE(program, nullptr) << error;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> vars(3), params(2);
      for (double& v : vars) v = rng.Uniform(-10, 10);
      for (double& p : params) p = rng.Uniform(-10, 10);
      EvalContext ctx{vars.data(), vars.size(), params.data(),
                      params.size()};
      const double interpreted = EvalExpr(*tree, ctx);
      const double jitted = program->Run(ctx);
      if (std::isnan(interpreted)) {
        EXPECT_TRUE(std::isnan(jitted));
      } else {
        EXPECT_DOUBLE_EQ(jitted, interpreted);
      }
    }
  }
}

TEST(JitTest, ProtectedSemanticsSurviveCompilation) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  // x / y with y == 0 must hit the protected kernel, not IEEE inf.
  const auto program =
      JitProgram::Compile(*Div(Variable(0, ""), Variable(1, "")), &error);
  ASSERT_NE(program, nullptr) << error;
  const double vars[] = {5.0, 0.0};
  EvalContext ctx{vars, 2, nullptr, 0};
  EXPECT_DOUBLE_EQ(program->Run(ctx), 1.0);
}

}  // namespace
}  // namespace gmr::expr
