#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/variables.h"

namespace gmr::expr {
namespace {

ExprPtr RandomTree(Rng& rng, int depth, int num_vars, int num_params) {
  if (depth <= 1 || rng.Bernoulli(0.3)) {
    const double dice = rng.Uniform();
    if (dice < 0.4) return Variable(rng.UniformInt(0, num_vars - 1), "");
    if (dice < 0.6) return Parameter(rng.UniformInt(0, num_params - 1), "");
    return Constant(rng.Uniform(-5, 5));
  }
  static const NodeKind kBinary[] = {NodeKind::kAdd, NodeKind::kSub,
                                     NodeKind::kMul, NodeKind::kDiv,
                                     NodeKind::kMin, NodeKind::kMax};
  static const NodeKind kUnary[] = {NodeKind::kNeg, NodeKind::kLog,
                                    NodeKind::kExp};
  if (rng.Bernoulli(0.25)) {
    return MakeUnary(kUnary[rng.UniformInt(0, 2)],
                     RandomTree(rng, depth - 1, num_vars, num_params));
  }
  return MakeBinary(kBinary[rng.UniformInt(0, 5)],
                    RandomTree(rng, depth - 1, num_vars, num_params),
                    RandomTree(rng, depth - 1, num_vars, num_params));
}

TEST(JitTest, SourceGenerationMentionsSlotsAndKernels) {
  const ExprPtr e =
      Div(Add(Variable(2, ""), Parameter(1, "")), Log(Constant(3.0)));
  const std::string source = GenerateCSource(*e);
  EXPECT_NE(source.find("v[2]"), std::string::npos);
  EXPECT_NE(source.find("p[1]"), std::string::npos);
  EXPECT_NE(source.find("gmr_pdiv"), std::string::npos);
  EXPECT_NE(source.find("gmr_plog"), std::string::npos);
  EXPECT_NE(source.find("double gmr_eval"), std::string::npos);
}

TEST(JitTest, MatchesInterpreterOnRiverEquation) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  const auto equation = river::PhytoplanktonDerivative();
  const auto program = JitProgram::Compile(*equation, &error);
  ASSERT_NE(program, nullptr) << error;

  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> vars(river::kNumVariables);
    for (double& v : vars) v = rng.Uniform(0.01, 30.0);
    EvalContext ctx{vars.data(), vars.size(), params.data(), params.size()};
    const double interpreted = EvalExpr(*equation, ctx);
    const double jitted = program->Run(ctx);
    EXPECT_TRUE(WithinUlps(jitted, interpreted, 4))
        << jitted << " vs " << interpreted << " (ulps "
        << UlpDistance(jitted, interpreted) << ")";
  }
}

TEST(JitTest, MatchesInterpreterOnRandomTrees) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const ExprPtr tree = RandomTree(rng, 5, 3, 2);
    std::string error;
    const auto program = JitProgram::Compile(*tree, &error);
    ASSERT_NE(program, nullptr) << error;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> vars(3), params(2);
      for (double& v : vars) v = rng.Uniform(-10, 10);
      for (double& p : params) p = rng.Uniform(-10, 10);
      EvalContext ctx{vars.data(), vars.size(), params.data(),
                      params.size()};
      const double interpreted = EvalExpr(*tree, ctx);
      const double jitted = program->Run(ctx);
      EXPECT_TRUE(WithinUlps(jitted, interpreted, 4))
          << jitted << " vs " << interpreted << " (ulps "
          << UlpDistance(jitted, interpreted) << ")";
    }
  }
}

TEST(JitTest, NegationOfNegativeConstantDoesNotFuseIntoDecrement) {
  // Found by gmr_fuzz: Neg(Constant(-1)) used to emit "(--1)", which C
  // parses as a decrement of an rvalue and rejects.
  const ExprPtr tree = Neg(Constant(-1.0));
  const std::string source = GenerateCSource(*tree);
  EXPECT_EQ(source.find("--"), std::string::npos) << source;
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  const auto program = JitProgram::Compile(*tree, &error);
  ASSERT_NE(program, nullptr) << error;
  EvalContext ctx{nullptr, 0, nullptr, 0};
  EXPECT_EQ(program->Run(ctx), 1.0);
}

TEST(JitTest, NonFiniteConstantsCompileToMathHSpellings) {
  // inf/nan are not C literals; the generator must spell them via math.h.
  const double inf = std::numeric_limits<double>::infinity();
  const std::string source = GenerateCSource(
      *Add(Constant(inf), Add(Constant(-inf),
                              Constant(std::numeric_limits<double>::quiet_NaN()))));
  EXPECT_EQ(source.find("inf"), std::string::npos) << source;
  EXPECT_EQ(source.find("nan"), std::string::npos) << source;
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  const auto program = JitProgram::Compile(*Exp(Constant(inf)), &error);
  ASSERT_NE(program, nullptr) << error;
  EvalContext ctx{nullptr, 0, nullptr, 0};
  // Protected exp clamps the argument to 80 on both backends.
  EXPECT_EQ(program->Run(ctx), EvalExpr(*Exp(Constant(inf)), ctx));
}

TEST(JitTest, InjectedCompileFaultFailsCleanly) {
  // The jit_compile injection point fires before any compiler is invoked,
  // so this works even on systems without a C compiler.
  std::string spec_error;
  ASSERT_TRUE(SetFaultSpec("jit_compile:always", &spec_error)) << spec_error;
  std::string error;
  const auto program = JitProgram::Compile(*Constant(1.0), &error);
  EXPECT_EQ(program, nullptr);
  EXPECT_NE(error.find("fault injection: jit_compile"), std::string::npos)
      << error;
  ClearFaults();
}

TEST(JitCircuitBreakerTest, OpensAtThresholdAndLogsOnce) {
  JitCircuitBreaker breaker(3);
  EXPECT_TRUE(breaker.allowed());
  breaker.RecordFailure("boom 1");
  breaker.RecordFailure("boom 2");
  EXPECT_TRUE(breaker.allowed());
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure("boom 3");
  EXPECT_TRUE(breaker.open());
  EXPECT_FALSE(breaker.allowed());
  EXPECT_EQ(breaker.disable_log_count(), 1);
  // Further failures never log again.
  breaker.RecordFailure("boom 4");
  EXPECT_EQ(breaker.disable_log_count(), 1);
}

TEST(JitCircuitBreakerTest, SuccessResetsConsecutiveCount) {
  JitCircuitBreaker breaker(3);
  breaker.RecordFailure("boom");
  breaker.RecordFailure("boom");
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.RecordFailure("boom");
  breaker.RecordFailure("boom");
  EXPECT_FALSE(breaker.open());  // never 3 in a row
}

TEST(JitCircuitBreakerTest, ResetClosesTheBreaker) {
  JitCircuitBreaker breaker(1);
  breaker.RecordFailure("boom");
  EXPECT_TRUE(breaker.open());
  breaker.Reset();
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.allowed());
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(JitFallbackTest, VmBackendFitnessIsBitIdenticalUnderCompileFaults) {
  // A RiverFitness evaluation that asks for the native JIT but hits compile
  // failures must produce exactly the fitness of the bytecode-VM backend.
  river::RiverDataset dataset;
  dataset.num_days = 20;
  dataset.drivers.assign(river::kNumVariables, {});
  for (int slot : river::ObservedVariableSlots()) {
    dataset.drivers[static_cast<std::size_t>(slot)] =
        std::vector<double>(dataset.num_days, 1.0);
  }
  dataset.observed_bphy = std::vector<double>(dataset.num_days, 5.0);
  dataset.train_end = 10;
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const std::vector<ExprPtr> equations{river::PhytoplanktonDerivative(),
                                       river::ZooplanktonDerivative()};

  const auto evaluate = [&](const river::SimulationConfig& config) {
    const river::RiverFitness fitness =
        river::RiverFitness::ForTraining(&dataset, config);
    auto eval = fitness.Begin(equations, params, /*use_compiled_backend=*/true);
    while (eval->Step()) {
    }
    return eval->CurrentFitness();
  };

  const double vm_fitness = evaluate(river::SimulationConfig{});

  std::string spec_error;
  ASSERT_TRUE(SetFaultSpec("jit_compile:always", &spec_error)) << spec_error;
  JitCircuitBreaker breaker;
  river::SimulationConfig jit_config;
  jit_config.compiled_backend = river::CompiledBackend::kNativeJit;
  jit_config.jit_breaker = &breaker;
  const double fallback_fitness = evaluate(jit_config);
  ClearFaults();

  EXPECT_EQ(fallback_fitness, vm_fitness);  // bit-identical, not just close
  EXPECT_GT(breaker.consecutive_failures(), 0);
}

TEST(JitTest, ProtectedSemanticsSurviveCompilation) {
  if (!JitAvailable()) GTEST_SKIP() << "no C compiler on this system";
  std::string error;
  // x / y with y == 0 must hit the protected kernel, not IEEE inf.
  const auto program =
      JitProgram::Compile(*Div(Variable(0, ""), Variable(1, "")), &error);
  ASSERT_NE(program, nullptr) << error;
  const double vars[] = {5.0, 0.0};
  EvalContext ctx{vars, 2, nullptr, 0};
  EXPECT_DOUBLE_EQ(program->Run(ctx), 1.0);
}

}  // namespace
}  // namespace gmr::expr
