#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "gp/evaluator.h"
#include "gp/operators.h"
#include "gp/tag3p.h"
#include "tag/generate.h"

namespace gmr::gp {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;

/// Toy grammar over one variable x: seed "x + 0", revisions "Exp* + R" and
/// "Exp* * R". The target concept 2x + 1 is reachable by two adjunctions.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

/// Fitness: running RMSE of eval(equation) against the target 2x + 1 over
/// `n` cases with x = i/(n-1). Supports both backends and counts steps.
class ToyFitness : public SequentialFitness {
 public:
  explicit ToyFitness(std::size_t n, std::size_t num_params = 0)
      : n_(n), num_params_(num_params) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return num_params_; }

  std::unique_ptr<SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public SequentialEvaluation {
     public:
      Eval(const e::ExprPtr& eq, std::vector<double> params, bool compiled,
           std::size_t n)
          : equation_(eq), params_(std::move(params)), n_(n) {
        if (compiled) program_ = e::Compile(*equation_);
        compiled_ = compiled;
      }
      bool Step() override {
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        ctx.parameters = params_.data();
        ctx.num_parameters = params_.size();
        const double pred = compiled_ ? program_.Run(ctx)
                                      : e::EvalExpr(*equation_, ctx);
        const double err = pred - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      std::vector<double> params_;
      e::CompiledProgram program_;
      bool compiled_ = false;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    return std::make_unique<Eval>(equations[0], parameters,
                                  use_compiled_backend, n_);
  }

 private:
  std::size_t n_;
  std::size_t num_params_;
};

Individual MakeIndividual(const t::Grammar& grammar, std::size_t target,
                          Rng& rng, std::size_t num_params = 0) {
  Individual individual;
  individual.genotype = t::GrowRandom(grammar, 0, target, rng);
  individual.parameters.assign(num_params, 0.5);
  return individual;
}

// ----------------------------------------------------------- operators ----

class OperatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OperatorPropertyTest, CrossoverPreservesValidityAndTotalSize) {
  const t::Grammar grammar = ToyGrammar();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  const SizeBounds bounds{2, 30};
  Individual a = MakeIndividual(grammar, 6, rng);
  Individual b = MakeIndividual(grammar, 9, rng);
  const std::size_t total = a.Size() + b.Size();
  const bool swapped = Crossover(grammar, bounds, 5, &a, &b, rng);
  if (swapped) {
    EXPECT_EQ(a.Size() + b.Size(), total);
    EXPECT_GE(a.Size(), bounds.min_size);
    EXPECT_LE(a.Size(), bounds.max_size);
    EXPECT_GE(b.Size(), bounds.min_size);
    EXPECT_LE(b.Size(), bounds.max_size);
    EXPECT_FALSE(a.IsEvaluated());
  }
  std::string error;
  EXPECT_TRUE(t::Validate(grammar, *a.genotype, &error)) << error;
  EXPECT_TRUE(t::Validate(grammar, *b.genotype, &error)) << error;
}

TEST_P(OperatorPropertyTest, SubtreeMutationKeepsBoundsAndValidity) {
  const t::Grammar grammar = ToyGrammar();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const SizeBounds bounds{2, 20};
  Individual individual = MakeIndividual(grammar, 8, rng);
  SubtreeMutation(grammar, bounds, &individual, rng);
  EXPECT_LE(individual.Size(), bounds.max_size);
  std::string error;
  EXPECT_TRUE(t::Validate(grammar, *individual.genotype, &error)) << error;
}

TEST_P(OperatorPropertyTest, LocalSearchOperatorsKeepValidity) {
  const t::Grammar grammar = ToyGrammar();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 19 + 5);
  const SizeBounds bounds{2, 15};
  Individual individual = MakeIndividual(grammar, 5, rng);
  for (int i = 0; i < 15; ++i) {
    if (rng.Bernoulli(0.5)) {
      PointInsertion(grammar, bounds, &individual, rng);
    } else {
      PointDeletion(bounds, &individual, rng);
    }
    EXPECT_GE(individual.Size(), 1u);
    EXPECT_LE(individual.Size(), bounds.max_size);
    std::string error;
    ASSERT_TRUE(t::Validate(grammar, *individual.genotype, &error)) << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorPropertyTest,
                         ::testing::Range(0, 25));

TEST(OperatorTest, GaussianMutationRespectsBounds) {
  const t::Grammar grammar = ToyGrammar();
  Rng rng(3);
  ParameterPriors priors{{"a", 0.5, 0.0, 1.0}, {"b", 10.0, 5.0, 15.0}};
  Individual individual = MakeIndividual(grammar, 4, rng, priors.size());
  individual.parameters = PriorMeans(priors);
  for (int i = 0; i < 100; ++i) {
    GaussianMutation(priors, 1.0, &individual, rng);
    EXPECT_GE(individual.parameters[0], 0.0);
    EXPECT_LE(individual.parameters[0], 1.0);
    EXPECT_GE(individual.parameters[1], 5.0);
    EXPECT_LE(individual.parameters[1], 15.0);
  }
  // Mutation must actually move parameters.
  EXPECT_NE(individual.parameters[0], 0.5);
}

TEST(OperatorTest, GaussianMutationSigmaScaleShrinksSteps) {
  const t::Grammar grammar = ToyGrammar();
  ParameterPriors priors{{"a", 0.5, 0.0, 1.0}};
  double large_scale_step = 0.0;
  double small_scale_step = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 100);
    Individual individual = MakeIndividual(grammar, 3, rng, 1);
    individual.parameters = {0.5};
    GaussianMutation(priors, 1.0, &individual, rng);
    large_scale_step += std::fabs(individual.parameters[0] - 0.5);

    Rng rng2(static_cast<std::uint64_t>(trial) + 100);
    Individual individual2 = MakeIndividual(grammar, 3, rng2, 1);
    individual2.parameters = {0.5};
    GaussianMutation(priors, 0.1, &individual2, rng2);
    small_scale_step += std::fabs(individual2.parameters[0] - 0.5);
  }
  EXPECT_LT(small_scale_step, large_scale_step);
}

TEST(OperatorTest, PriorMeansMatchPriors) {
  ParameterPriors priors{{"a", 0.5, 0.0, 1.0}, {"b", 10.0, 5.0, 15.0}};
  EXPECT_EQ(PriorMeans(priors), (std::vector<double>{0.5, 10.0}));
}

TEST(OperatorTest, InitialSigmaFallsBackToRangeForZeroMean) {
  const ParameterPrior zero_mean{"z", 0.0, -4.0, 4.0};
  EXPECT_DOUBLE_EQ(zero_mean.InitialSigma(), 1.0);
  const ParameterPrior positive{"p", 8.0, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(positive.InitialSigma(), 2.0);
}

// ----------------------------------------------------------- evaluator ----

TEST(EvaluatorTest, CacheHitsForIdenticalIndividuals) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(50);
  SpeedupConfig config;
  config.tree_caching = true;
  FitnessEvaluator evaluator(&grammar, &fitness, config);
  Rng rng(7);
  Individual a = MakeIndividual(grammar, 5, rng);
  Individual b = a.Clone();
  evaluator.Evaluate(&a);
  evaluator.Evaluate(&b);
  EXPECT_EQ(evaluator.stats().individuals_evaluated, 1u);
  EXPECT_EQ(evaluator.stats().cache_hits, 1u);
  EXPECT_EQ(evaluator.stats().cache_lookups, 2u);
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

TEST(EvaluatorTest, CacheDistinguishesParameters) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(50, 1);
  SpeedupConfig config;
  config.tree_caching = true;
  FitnessEvaluator evaluator(&grammar, &fitness, config);
  Rng rng(7);
  Individual a = MakeIndividual(grammar, 5, rng, 1);
  Individual b = a.Clone();
  b.parameters[0] = 0.75;
  evaluator.Evaluate(&a);
  evaluator.Evaluate(&b);
  EXPECT_EQ(evaluator.stats().cache_hits, 0u);
  EXPECT_EQ(evaluator.stats().individuals_evaluated, 2u);
}

TEST(EvaluatorTest, ShortCircuitSkipsTimeSteps) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(1000);
  SpeedupConfig config;
  config.short_circuiting = true;
  config.es_threshold = 1.0;
  FitnessEvaluator evaluator(&grammar, &fitness, config);
  Rng rng(11);

  // First individual: full evaluation (no bestPrevFull yet).
  Individual good = MakeIndividual(grammar, 2, rng);
  evaluator.Evaluate(&good);
  EXPECT_TRUE(good.fully_evaluated);
  const std::size_t steps_after_first =
      evaluator.stats().time_steps_evaluated;
  EXPECT_EQ(steps_after_first, 1000u);

  // A terrible individual (constant far away) should be cut early. Build
  // it by attaching a huge additive lexeme.
  Individual bad = good.Clone();
  ASSERT_TRUE(PointInsertion(grammar, SizeBounds{1, 50}, &bad, rng));
  // Force the lexeme to an absurd value.
  ASSERT_FALSE(bad.genotype->children.empty());
  bad.genotype->children[0].node->lexemes.assign(
      bad.genotype->children[0].node->lexemes.size(), 1e6);
  evaluator.Evaluate(&bad);
  EXPECT_FALSE(bad.fully_evaluated);
  EXPECT_LT(evaluator.stats().time_steps_evaluated, 2 * 1000u);
  EXPECT_EQ(evaluator.stats().short_circuited, 1u);
  EXPECT_GT(bad.fitness, good.fitness);
}

TEST(EvaluatorTest, ConservativeThresholdDelaysShortCircuit) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(500);

  auto run = [&](double threshold) {
    SpeedupConfig config;
    config.short_circuiting = true;
    config.es_threshold = threshold;
    FitnessEvaluator evaluator(&grammar, &fitness, config);
    Rng rng(13);
    Individual good = MakeIndividual(grammar, 2, rng);
    evaluator.Evaluate(&good);
    Individual bad = good.Clone();
    PointInsertion(grammar, SizeBounds{1, 50}, &bad, rng);
    if (!bad.genotype->children.empty()) {
      bad.genotype->children[0].node->lexemes.assign(
          bad.genotype->children[0].node->lexemes.size(), 50.0);
    }
    evaluator.Evaluate(&bad);
    return evaluator.stats().time_steps_evaluated;
  };

  // A more conservative threshold must evaluate at least as many steps.
  EXPECT_LE(run(0.7), run(1.3));
}

TEST(EvaluatorTest, BackendsAgree) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(100);
  Rng rng(17);
  Individual individual = MakeIndividual(grammar, 6, rng);

  SpeedupConfig interpreted;
  interpreted.runtime_compilation = false;
  SpeedupConfig compiled;
  compiled.runtime_compilation = true;
  FitnessEvaluator eval_interpreted(&grammar, &fitness, interpreted);
  FitnessEvaluator eval_compiled(&grammar, &fitness, compiled);
  Individual a = individual.Clone();
  Individual b = individual.Clone();
  eval_interpreted.Evaluate(&a);
  eval_compiled.Evaluate(&b);
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  EXPECT_DOUBLE_EQ(eval_interpreted.EvaluateFull(individual),
                   eval_compiled.EvaluateFull(individual));
}

TEST(EvaluatorTest, SimplificationImprovesCacheHits) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(50);

  auto hit_rate = [&](bool simplify) {
    SpeedupConfig config;
    config.tree_caching = true;
    config.simplify_before_eval = simplify;
    FitnessEvaluator evaluator(&grammar, &fitness, config);
    Rng rng(23);
    // Many random small individuals: simplification collapses semantically
    // equal genotypes (e.g. x + 0 variants) to one key.
    for (int i = 0; i < 200; ++i) {
      Individual individual = MakeIndividual(grammar, 3, rng);
      // Zero out all lexemes so "+0" patterns appear often.
      std::vector<t::NodeRef> refs =
          t::CollectNodeRefs(individual.genotype.get());
      for (auto& ref : refs) {
        ref.node()->lexemes.assign(ref.node()->lexemes.size(), 0.0);
      }
      evaluator.Evaluate(&individual);
    }
    return evaluator.stats().CacheHitRate();
  };

  EXPECT_GT(hit_rate(true), hit_rate(false));
}


TEST(OperatorTest, ParameterTweakChangesExactlyOneParameter) {
  const t::Grammar grammar = ToyGrammar();
  ParameterPriors priors{{"a", 0.5, 0.0, 1.0},
                         {"b", 10.0, 5.0, 15.0},
                         {"c", 2.0, 1.0, 3.0}};
  Rng rng(41);
  Individual individual = MakeIndividual(grammar, 3, rng, priors.size());
  individual.parameters = PriorMeans(priors);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> before = individual.parameters;
    ASSERT_TRUE(ParameterTweak(priors, &individual, rng));
    int changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (individual.parameters[i] != before[i]) ++changed;
      EXPECT_GE(individual.parameters[i], priors[i].lo);
      EXPECT_LE(individual.parameters[i], priors[i].hi);
    }
    EXPECT_LE(changed, 1);
  }
  EXPECT_FALSE(individual.IsEvaluated());
}

TEST(OperatorTest, ParameterTweakFailsWithoutParameters) {
  const t::Grammar grammar = ToyGrammar();
  Rng rng(43);
  Individual individual = MakeIndividual(grammar, 3, rng, 0);
  EXPECT_FALSE(ParameterTweak({}, &individual, rng));
}

TEST(ExtrapolateTest, GrowthProjectsForward) {
  // At the final step the projection is the identity; earlier steps
  // project upward, monotonically more so the earlier the cut.
  EXPECT_DOUBLE_EQ(ExtrapolateGrowth(10.0, 100, 100), 10.0);
  const double mid = ExtrapolateGrowth(10.0, 50, 100);
  const double early = ExtrapolateGrowth(10.0, 10, 100);
  EXPECT_GT(mid, 10.0);
  EXPECT_GT(early, mid);
  EXPECT_DOUBLE_EQ(ExtrapolateIdentity(10.0, 10, 100), 10.0);
}

TEST(ExtrapolateTest, EagerThresholdIsActuallyEagerUnderGrowth) {
  // With the growth extrapolation, a candidate slightly worse than the
  // incumbent is cut under threshold 0.7 but kept under threshold 1.0 at
  // the same point of evaluation: fitness 0.8*best trips the 0.7 gate and
  // the projected estimate exceeds best early in the run.
  const double best = 100.0;
  const double fitness = 80.0;  // 0.8 * best
  const std::size_t step = 10;
  const std::size_t total = 1000;
  EXPECT_GT(fitness, best * 0.7);
  EXPECT_LT(fitness, best * 1.0);
  EXPECT_GT(ExtrapolateGrowth(fitness, step, total), best);
}

// -------------------------------------------------------------- engine ----

TEST(Tag3pEngineTest, ImprovesFitnessOnToyProblem) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  Tag3pConfig config;
  config.population_size = 30;
  config.max_generations = 15;
  config.bounds = SizeBounds{2, 12};
  config.local_search_steps = 2;
  config.sigma_rampdown_generations = 5;
  config.seed = 5;
  Tag3pEngine engine(&grammar, &fitness, {}, config);
  const Tag3pResult result = engine.Run();
  ASSERT_FALSE(result.history.empty());
  // The seed process "x + 0" has RMSE sqrt(mean((x - (2x+1))^2)) ~ 1.53;
  // the engine must improve markedly on it.
  EXPECT_LT(result.best.fitness, 0.8);
  EXPECT_LE(result.history.back().best_fitness,
            result.history.front().best_fitness);
}

TEST(Tag3pEngineTest, DeterministicForSameSeed) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(40);
  Tag3pConfig config;
  config.population_size = 16;
  config.max_generations = 6;
  config.seed = 42;
  config.local_search_steps = 1;
  Tag3pEngine engine_a(&grammar, &fitness, {}, config);
  Tag3pEngine engine_b(&grammar, &fitness, {}, config);
  const Tag3pResult a = engine_a.Run();
  const Tag3pResult b = engine_b.Run();
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].best_fitness, b.history[i].best_fitness);
  }
}

TEST(Tag3pEngineTest, ElitismKeepsBestMonotone) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(40);
  Tag3pConfig config;
  config.population_size = 20;
  config.max_generations = 10;
  config.elite_size = 2;
  config.seed = 9;
  config.speedups.tree_caching = true;
  Tag3pEngine engine(&grammar, &fitness, {}, config);
  const Tag3pResult result = engine.Run();
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].best_fitness,
              result.history[i - 1].best_fitness + 1e-12);
  }
}

TEST(Tag3pEngineTest, GenerationCallbackFires) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(20);
  Tag3pConfig config;
  config.population_size = 8;
  config.max_generations = 4;
  config.seed = 1;
  config.local_search_steps = 0;
  Tag3pEngine engine(&grammar, &fitness, {}, config);
  int calls = 0;
  engine.set_generation_callback(
      [&calls](const GenerationStats&) { ++calls; });
  engine.Run();
  EXPECT_EQ(calls, 4);
}

}  // namespace
}  // namespace gmr::gp
