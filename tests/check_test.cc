// Tests of the property-based testing subsystem itself (src/check/):
// generator determinism across thread counts, shrinker minimization,
// oracle sanity on known-good and known-doomed candidates, and the
// counterexample write -> replay cycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/grammar_io.h"
#include "analysis/static_gate.h"
#include "check/corpus.h"
#include "check/fuzz.h"
#include "check/gen.h"
#include "check/oracles.h"
#include "check/shrink.h"
#include "common/thread_pool.h"
#include "expr/print.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "tag/generate.h"

namespace gmr::check {
namespace {

std::string RenderPopulation(const std::vector<expr::ExprPtr>& population) {
  std::string out;
  for (const auto& tree : population) {
    out += expr::ToSExpression(*tree);
    out += '\n';
  }
  return out;
}

tag::Grammar ToyGrammar() {
  std::istringstream spec(
      "# gmr-grammar v1\n"
      "slot R 0.0 1.0\n"
      "alpha seed Exp : B_Phy + R\n"
      "beta grow Exp : FOOT * R\n"
      "beta extend Exp : FOOT + V_tmp * R\n");
  tag::Grammar grammar;
  std::string error;
  EXPECT_TRUE(analysis::ParseGrammarSpec(spec, river::RiverSymbols(), &grammar,
                                         &error))
      << error;
  return grammar;
}

// ---- generators ----

TEST(GenTest, CaseSeedsAreDistinctAndRunSeedSensitive) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(CaseSeed(1, i)).second) << i;
  }
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(2, 0));
}

// The satellite determinism audit: same seed => byte-identical generated
// population whether produced inline or fanned out over a 4-thread pool
// (the trace-compare pattern of obs_test's kFrozenFrontier test).
TEST(GenTest, PopulationIsByteIdenticalAcrossThreadCounts) {
  const GenConfig config = RiverGenConfig();
  ThreadPool pool(4);
  const auto pooled = GeneratePopulation(config, 64, 99, &pool);
  const auto inline_run = GeneratePopulation(config, 64, 99, nullptr);
  EXPECT_EQ(RenderPopulation(pooled), RenderPopulation(inline_run));
  // And a different seed actually changes the population.
  const auto other = GeneratePopulation(config, 64, 100, nullptr);
  EXPECT_NE(RenderPopulation(pooled), RenderPopulation(other));
}

TEST(GenTest, DerivationPopulationIsByteIdenticalAcrossThreadCounts) {
  const tag::Grammar grammar = ToyGrammar();
  ThreadPool pool(4);
  const OracleResult verdict = CheckDerivationDeterministic(
      grammar, /*alpha_index=*/0, /*count=*/16, /*target_size=*/6,
      /*seed=*/7, &pool);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(GenTest, RandomParametersStayInPriorBoxes) {
  const GenConfig config = RiverGenConfig();
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto params = RandomParameters(config, rng);
    ASSERT_EQ(params.size(), config.priors.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_GE(params[i], config.priors[i].lo) << config.priors[i].name;
      EXPECT_LE(params[i], config.priors[i].hi) << config.priors[i].name;
    }
  }
}

// ---- shrinker ----

TEST(ShrinkTest, MinimizesToSmallestTreeKeepingTheFailure) {
  // "Failure" = the tree still contains a division. The shrinker must boil
  // a large random tree down to a bare div over minimal leaves.
  const auto contains_div = [](const expr::ExprPtr& tree) {
    struct Walker {
      static bool Walk(const expr::Expr& node) {
        if (node.kind() == expr::NodeKind::kDiv) return true;
        for (const auto& child : node.children()) {
          if (Walk(*child)) return true;
        }
        return false;
      }
    };
    return Walker::Walk(*tree);
  };
  const GenConfig config = RiverGenConfig();
  Rng rng(17);
  expr::ExprPtr tree;
  do {
    tree = RandomExpr(config, rng);
  } while (!contains_div(tree) || tree->NodeCount() < 10);

  ShrinkStats stats;
  const expr::ExprPtr shrunk =
      ShrinkExpr(tree, contains_div, /*max_attempts=*/2000, &stats);
  EXPECT_TRUE(contains_div(shrunk));
  EXPECT_LE(shrunk->NodeCount(), 3u) << expr::ToString(*shrunk);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_GE(stats.attempts, stats.accepted);
}

TEST(ShrinkTest, DerivationShrinksToRootWhenAnythingFails) {
  const tag::Grammar grammar = ToyGrammar();
  Rng rng(3);
  const tag::DerivationPtr grown =
      tag::GrowRandom(grammar, /*alpha_index=*/0, /*target_size=*/8, rng);
  ASSERT_GT(grown->NodeCount(), 1u);
  ShrinkStats stats;
  const auto always_fails = [](const tag::DerivationNode&) { return true; };
  const tag::DerivationPtr shrunk = ShrinkDerivation(
      grammar, *grown, always_fails, /*max_attempts=*/500, &stats);
  EXPECT_EQ(shrunk->NodeCount(), 1u);
  std::string error;
  EXPECT_TRUE(tag::Validate(grammar, *shrunk, &error)) << error;
}

// ---- oracles ----

TEST(OracleTest, RegistryKnowsEveryOracle) {
  const auto names = ExprOracleNames();
  EXPECT_EQ(names.size(), 12u);
  for (const std::string& name : names) {
    EXPECT_NE(FindExprOracle(name), nullptr) << name;
  }
  EXPECT_EQ(FindExprOracle("nope"), nullptr);
}

TEST(OracleTest, ExpertEquationPassesEveryExprOracle) {
  const GenConfig config = RiverGenConfig();
  OracleContext ctx;
  ctx.config = &config;
  ExprCase c;
  c.seed = 42;
  c.tree = river::PhytoplanktonDerivative();
  c.parameters = gp::PriorMeans(river::RiverParameterPriors());
  for (const std::string& name : ExprOracleNames()) {
    // The compiler-invoking oracles cost ~100 ms each; covered by
    // jit_test and batch_test.
    if (name == "jit" || name == "batch_jit") continue;
    const OracleResult verdict = FindExprOracle(name)(c, ctx);
    EXPECT_TRUE(verdict.ok) << name << ": " << verdict.detail;
  }
}

TEST(OracleTest, GateRejectionIsBackedByRuntimeDoom) {
  // Provably -inf everywhere: the gate must reject, and the gate-soundness
  // oracle must agree that rejection was justified at runtime.
  const GenConfig config = RiverGenConfig();
  OracleContext ctx;
  ctx.config = &config;
  ExprCase c;
  c.seed = 42;
  c.tree = expr::Sub(expr::Constant(-1e308), expr::Constant(1e308));
  c.parameters = gp::PriorMeans(river::RiverParameterPriors());

  analysis::StaticGateConfig gate;
  gate.enabled = true;
  gate.domains = config.domains;
  gate.saturation_rate = ctx.saturation_rate;
  EXPECT_TRUE(analysis::AnalyzeCandidate({c.tree}, gate).reject);

  const OracleResult verdict = CheckGateSound(c, ctx);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

// ---- fuzz driver + corpus ----

TEST(FuzzTest, SmallRunIsGreenAndThreadCountInvariant) {
  FuzzOptions options;
  options.seed = 11;
  options.iterations = 100;
  options.jit_every = 1 << 20;  // keep the unit test compile-free
  const FuzzReport inline_report = RunFuzz(options);
  EXPECT_TRUE(inline_report.ok());
  EXPECT_GE(inline_report.properties.size(), 6u);

  ThreadPool pool(4);
  options.pool = &pool;
  const FuzzReport pooled_report = RunFuzz(options);
  EXPECT_EQ(pooled_report.total_cases, inline_report.total_cases);
  EXPECT_EQ(pooled_report.total_failures, inline_report.total_failures);
}

TEST(FuzzTest, FilterSelectsProperties) {
  FuzzOptions options;
  options.seed = 11;
  options.iterations = 20;
  options.filter = "roundtrip";  // substring match: printer and ckpt codecs
  const FuzzReport report = RunFuzz(options);
  ASSERT_EQ(report.properties.size(), 2u);
  EXPECT_EQ(report.properties[0].name, "roundtrip");
  EXPECT_EQ(report.properties[0].cases, 20u);
  EXPECT_EQ(report.properties[1].name, "ckpt_roundtrip");
  EXPECT_EQ(report.properties[1].cases, 20u);
}

TEST(CorpusTest, WrittenCounterexampleReplays) {
  const GenConfig config = RiverGenConfig();
  OracleContext ctx;
  ctx.config = &config;
  const std::string dir = ::testing::TempDir() + "gmr_prop_corpus";

  Counterexample counterexample;
  counterexample.property = "vm";
  counterexample.seed = 123;
  counterexample.tree = river::PhytoplanktonDerivative();
  counterexample.parameters = gp::PriorMeans(river::RiverParameterPriors());
  counterexample.detail = "not actually failing; replay mechanics test";
  const std::string path =
      WriteCounterexample(dir, counterexample, config.parameter_names);
  ASSERT_FALSE(path.empty());

  const ReplayResult result = ReplayCorpus(dir, ctx, nullptr);
  EXPECT_EQ(result.files, 1);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.errors, 0) << (result.messages.empty()
                                      ? ""
                                      : result.messages.front());
  std::remove(path.c_str());
}

TEST(CorpusTest, UnknownPropertyHeaderIsAnError) {
  const GenConfig config = RiverGenConfig();
  OracleContext ctx;
  ctx.config = &config;
  const std::string dir = ::testing::TempDir() + "gmr_prop_corpus_bad";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/mystery-1.gmr";
  {
    std::ofstream out(path);
    out << "# gmr-model v1\n# property: mystery\n# seed: 1\nequation B_Phy\n";
  }
  const ReplayResult result = ReplayCorpus(dir, ctx, nullptr);
  EXPECT_EQ(result.errors, 1);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(CorpusTest, MissingDirectoryReplaysNothing) {
  const GenConfig config = RiverGenConfig();
  OracleContext ctx;
  ctx.config = &config;
  const ReplayResult result =
      ReplayCorpus("/nonexistent/gmr/prop/corpus", ctx, nullptr);
  EXPECT_EQ(result.files, 0);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace gmr::check
