// Checkpointing overhead on the search hot path: identical GMR runs with
// checkpointing off, snapshotting every generation, and snapshotting every
// 5 generations (the durable write-fsync-rename cycle plus full-state
// serialization is paid at each cadence point). A final pass rewinds the
// snapshot chain to a mid-run generation and resumes, timing the resumed
// segment and verifying it reproduces the uninterrupted result exactly.
// Results land in BENCH_ckpt.json (shared bench schema v2).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "common/timer.h"
#include "core/gmr.h"

namespace {

using namespace gmr;

struct Pass {
  double seconds = 0.0;
  double best_fitness = 0.0;
  double snapshots = 0.0;
  double state_bytes = 0.0;  ///< On-disk checkpoint directory footprint.
};

double DirectoryBytes(const std::string& dir) {
  std::error_code ec;
  double total = 0.0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      total += static_cast<double>(entry.file_size(ec));
    }
  }
  return total;
}

Pass RunOnce(const core::GmrConfig& config, const core::GmrProblem& problem,
             ckpt::Checkpointer* checkpointer) {
  obs::RunContext context;
  context.checkpointer = checkpointer;
  Timer timer;
  const core::GmrRunResult result = core::RunGmr(config, problem, context);
  Pass pass;
  pass.seconds = timer.ElapsedSeconds();
  pass.best_fitness = result.best.fitness;
  return pass;
}

/// Minimum wall-clock over `repeats` identical runs; each checkpointed
/// repeat starts from a cleared directory so no repeat ever resumes.
Pass BestOf(int repeats, const core::GmrConfig& config,
            const core::GmrProblem& problem, const std::string& dir,
            std::uint64_t every_steps) {
  Pass best;
  for (int r = 0; r < repeats; ++r) {
    Pass pass;
    if (dir.empty()) {
      pass = RunOnce(config, problem, nullptr);
    } else {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      ckpt::CheckpointOptions options;
      options.dir = dir;
      options.every_steps = every_steps;
      ckpt::Checkpointer checkpointer(options);
      pass = RunOnce(config, problem, &checkpointer);
      pass.snapshots = static_cast<double>(checkpointer.saves_attempted());
      pass.state_bytes = DirectoryBytes(dir);
    }
    if (r == 0 || pass.seconds < best.seconds) best = pass;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  scale.population = std::min(scale.population, 30);
  scale.generations = std::min(scale.generations, 10);
  scale.local_search_steps = 2;

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const core::GmrProblem problem{&dataset, &knowledge};

  core::GmrConfig config = bench::MakeGmrConfig(scale, /*seed=*/5);
  config.tag3p.speedups.num_threads = options.threads;
  const std::uint64_t config_hash = bench::HashGmrConfig(config);

  const std::string state_dir = "BENCH_ckpt_state";
  constexpr int kRepeats = 3;

  std::printf("[ckpt] checkpoint overhead, population %d x %d generations, "
              "best of %d runs each\n\n",
              config.tag3p.population_size, config.tag3p.max_generations,
              kRepeats);

  RunOnce(config, problem, nullptr);  // warm allocator/JIT caches

  const Pass baseline = BestOf(kRepeats, config, problem, "", 0);
  // every-1 runs last so its full chain is what the resume pass rewinds.
  const Pass every5 = BestOf(kRepeats, config, problem, state_dir, 5);
  const Pass every1 = BestOf(kRepeats, config, problem, state_dir, 1);

  const auto overhead_pct = [&](const Pass& pass) {
    return 100.0 * (pass.seconds - baseline.seconds) / baseline.seconds;
  };

  std::printf("%-12s %10s %11s %10s %14s %14s\n", "cadence", "seconds",
              "overhead%", "snapshots", "state bytes", "best fitness");
  std::printf("%-12s %10.3f %11s %10s %14s %14.6f\n", "off",
              baseline.seconds, "-", "-", "-", baseline.best_fitness);
  std::printf("%-12s %10.3f %10.2f%% %10.0f %14.0f %14.6f\n", "every 1",
              every1.seconds, overhead_pct(every1), every1.snapshots,
              every1.state_bytes, every1.best_fitness);
  std::printf("%-12s %10.3f %10.2f%% %10.0f %14.0f %14.6f\n", "every 5",
              every5.seconds, overhead_pct(every5), every5.snapshots,
              every5.state_bytes, every5.best_fitness);

  // Resume pass: the last every-1 repeat left its retained chain on disk.
  // Rewind it to the middle entry and time the resumed segment, which must
  // land on exactly the uninterrupted best.
  double resume_seconds = 0.0;
  double resume_identical = 0.0;
  double resume_step = 0.0;
  {
    std::uint64_t mid = 0;
    {
      ckpt::SnapshotStore store(state_dir, /*retain=*/8);
      if (store.entries().size() >= 2) {
        mid = store.entries()[(store.entries().size() - 1) / 2].step;
        store.DropNewerThan(mid);
      }
    }
    ckpt::CheckpointOptions ck_options;
    ck_options.dir = state_dir;
    ck_options.every_steps = 1;
    ckpt::Checkpointer checkpointer(ck_options);
    Timer timer;
    const Pass resumed = RunOnce(config, problem, &checkpointer);
    resume_seconds = timer.ElapsedSeconds();
    resume_identical =
        resumed.best_fitness == every1.best_fitness ? 1.0 : 0.0;
    resume_step = static_cast<double>(mid);
    std::printf("\n[ckpt] resume from generation %.0f: %.3fs, result %s\n",
                resume_step, resume_seconds,
                resume_identical != 0.0 ? "IDENTICAL" : "DIVERGED");
  }

  const bool identical = baseline.best_fitness == every1.best_fitness &&
                         baseline.best_fitness == every5.best_fitness &&
                         resume_identical != 0.0;
  std::printf("[ckpt] ckpt-on vs ckpt-off trajectory: %s\n",
              identical ? "IDENTICAL" : "DIVERGED");

  std::vector<bench::BenchRow> rows;
  {
    bench::BenchRow row("baseline", config.tag3p.seed, config_hash);
    row.Add("seconds", baseline.seconds);
    row.Add("best_fitness", baseline.best_fitness);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("ckpt_every_1", config.tag3p.seed, config_hash);
    row.Add("seconds", every1.seconds);
    row.Add("overhead_pct", overhead_pct(every1));
    row.Add("snapshots", every1.snapshots);
    row.Add("state_bytes", every1.state_bytes);
    row.Add("best_fitness", every1.best_fitness);
    row.Add("identical_trajectory", identical ? 1 : 0);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("ckpt_every_5", config.tag3p.seed, config_hash);
    row.Add("seconds", every5.seconds);
    row.Add("overhead_pct", overhead_pct(every5));
    row.Add("snapshots", every5.snapshots);
    row.Add("state_bytes", every5.state_bytes);
    row.Add("best_fitness", every5.best_fitness);
    row.Add("identical_trajectory", identical ? 1 : 0);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("resume_mid_run", config.tag3p.seed, config_hash);
    row.Add("seconds", resume_seconds);
    row.Add("resumed_from_step", resume_step);
    row.Add("identical_result", resume_identical);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_ckpt.json", "ckpt", options.threads, rows);

  std::error_code ec;
  std::filesystem::remove_all(state_dir, ec);
  return identical ? 0 : 1;
}
