// Parallel evaluation (PE) scaling: wall-clock of identical GMR searches at
// increasing thread counts (strong scaling) and with the population grown in
// proportion (weak scaling), plus the kFrozenFrontier determinism check —
// the best fitness must be bit-identical at every thread count.
//
// Results land in BENCH_parallel.json. Thread counts sweep powers of two up
// to --threads (default 8); on machines with fewer cores than that the
// speedup saturates at the core count — the table reports whatever the
// hardware gives, it does not assume.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"

namespace {

struct Run {
  double seconds = 0.0;
  double best_fitness = 0.0;
  std::uint64_t config_hash = 0;
};

Run RunSearch(const gmr::core::RiverPriorKnowledge& knowledge,
              const gmr::river::RiverFitness& fitness,
              const gmr::bench::Scale& scale, int population, int threads) {
  gmr::core::GmrConfig config = gmr::bench::MakeGmrConfig(scale, /*seed=*/11);
  config.tag3p.population_size = population;
  config.tag3p.speedups.tree_caching = true;
  config.tag3p.speedups.short_circuiting = true;
  config.tag3p.speedups.runtime_compilation = true;
  config.tag3p.speedups.num_threads = threads;

  gmr::gp::Tag3pConfig tag3p = config.tag3p;
  tag3p.seed_alpha_index = knowledge.seed_alpha_index;
  gmr::Timer timer;
  gmr::gp::Tag3pEngine engine(
      gmr::gp::Tag3pProblem{&knowledge.grammar, &fitness, knowledge.priors},
      tag3p, gmr::obs::RunContext{});
  const gmr::gp::Tag3pResult result = engine.Run();
  return {timer.ElapsedSeconds(), result.best.fitness,
          gmr::bench::HashGmrConfig(config)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  if (options.threads < 1) options.threads = 1;
  const int max_threads = options.threads > 1 ? options.threads : 8;

  bench::Scale scale = bench::Scale::FromEnvironment();
  scale.population = std::min(scale.population, 32);
  scale.generations = std::min(scale.generations, 6);
  scale.local_search_steps = 2;

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::vector<bench::BenchRow> rows;

  std::printf("[PE] strong scaling: fixed search (population %d x %d "
              "generations), varying threads\n",
              scale.population, scale.generations);
  std::printf("%8s %12s %10s %14s %6s\n", "threads", "seconds", "speedup",
              "best fitness", "det");
  double strong_base = 0.0;
  double reference_fitness = 0.0;
  bool deterministic = true;
  for (int threads : thread_counts) {
    const Run run = RunSearch(knowledge, fitness, scale, scale.population,
                              threads);
    if (threads == 1) {
      strong_base = run.seconds;
      reference_fitness = run.best_fitness;
    }
    const bool same = run.best_fitness == reference_fitness;
    deterministic = deterministic && same;
    std::printf("%8d %12.3f %9.2fx %14.6f %6s\n", threads, run.seconds,
                strong_base / run.seconds, run.best_fitness,
                same ? "ok" : "DIFF");
    bench::BenchRow row("strong", /*run_seed=*/11, run.config_hash);
    row.Add("weak", 0);
    row.Add("threads", threads);
    row.Add("seconds", run.seconds);
    row.Add("speedup", strong_base / run.seconds);
    row.Add("best_fitness", run.best_fitness);
    row.Add("deterministic", same ? 1 : 0);
    rows.push_back(std::move(row));
  }

  std::printf("\n[PE] weak scaling: population %d per thread\n",
              scale.population);
  std::printf("%8s %12s %12s %12s\n", "threads", "population", "seconds",
              "efficiency");
  double weak_base = 0.0;
  for (int threads : thread_counts) {
    const Run run = RunSearch(knowledge, fitness, scale,
                              scale.population * threads, threads);
    if (threads == 1) weak_base = run.seconds;
    std::printf("%8d %12d %12.3f %11.0f%%\n", threads,
                scale.population * threads, run.seconds,
                100.0 * weak_base / run.seconds);
    bench::BenchRow row("weak", /*run_seed=*/11, run.config_hash);
    row.Add("weak", 1);
    row.Add("threads", threads);
    row.Add("population", scale.population * threads);
    row.Add("seconds", run.seconds);
    row.Add("efficiency", weak_base / run.seconds);
    rows.push_back(std::move(row));
  }

  bench::WriteBenchJson("BENCH_parallel.json", "parallel", max_threads,
                        rows);
  std::printf("\n[PE] kFrozenFrontier determinism across thread counts: %s\n",
              deterministic ? "PASS" : "FAIL");
  return deterministic ? 0 : 1;
}
