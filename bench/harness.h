#ifndef GMR_BENCH_HARNESS_H_
#define GMR_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gmr.h"
#include "core/river_grammar.h"
#include "river/dataset.h"
#include "river/synthetic.h"

namespace gmr::bench {

/// Command-line options shared by the bench binaries.
struct BenchOptions {
  /// Evaluation threads (PE). From `--threads N`, else the
  /// GMR_BENCH_THREADS environment variable, else 1.
  int threads = 1;

  /// Optional JSONL trace path (`--trace PATH`): benches that drive full
  /// GMR/TAG3P runs attach a JsonlTraceSink here, for `gmr_trace`.
  std::string trace_path;

  static BenchOptions Parse(int argc, char** argv);
};

/// One row of a bench JSON file — the schema every bench shares
/// (schema_version 2): which method/variant ran, with what seed, under
/// which configuration (a canonical FNV-1a hash, see ConfigHasher), plus
/// named numeric stats in insertion order.
struct BenchRow {
  std::string method;
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::vector<std::pair<std::string, double>> stats;

  BenchRow() = default;
  BenchRow(std::string method_name, std::uint64_t run_seed,
           std::uint64_t hash)
      : method(std::move(method_name)), seed(run_seed), config_hash(hash) {}

  void Add(const std::string& key, double value) {
    stats.emplace_back(key, value);
  }
};

/// FNV-1a accumulator over canonical `key=value;` pairs. Feed every knob
/// that shapes a run; equal hashes across bench binaries then mean "same
/// configuration", which is what makes BENCH_*.json rows joinable offline.
class ConfigHasher {
 public:
  ConfigHasher& Add(const char* key, double value);
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

/// Canonical hash of a GMR search configuration (TAG3P knobs + speedup
/// toggles; thread count excluded — it lives in the file-level "threads"
/// field and must not change what a run computes).
std::uint64_t HashGmrConfig(const core::GmrConfig& config);

/// Writes the shared bench JSON schema to `path`:
///   {"bench": <name>, "schema_version": 2, "threads": <threads>,
///    "rows": [{"method": ..., "seed": ..., "config_hash": "<hex>",
///              "stats": {...}}, ...]}
/// Every bench emits its machine-readable results this way so runs at
/// different thread counts (and from different binaries) are comparable
/// offline.
void WriteBenchJson(const std::string& path, const std::string& name,
                    int threads, const std::vector<BenchRow>& rows);

/// Shared experiment scale. "quick" (default) finishes the whole bench
/// directory in minutes on a laptop; "full" approaches the paper's setup
/// (13 data years, population 200, 100 generations) and takes hours.
/// Select with the GMR_BENCH_SCALE environment variable (quick|full).
struct Scale {
  int data_years = 8;
  int train_years = 6;
  std::uint64_t data_seed = 7;

  /// The GP budget matches the paper (population 200, 100 generations,
  /// local search); evaluation short-circuiting + caching keep a full run
  /// in single-digit seconds, so even "quick" scale uses it.
  int population = 200;
  int generations = 100;
  int local_search_steps = 3;
  int runs = 8;  ///< Independent GMR runs; the best test-RMSE model reports.
  int gggp_runs = 3;  ///< GGGP runs (large population makes each run slow).

  std::size_t calibration_budget = 3000;

  int lstm_epochs = 60;
  int lstm_hidden_cap_all = 32;

  static Scale FromEnvironment();
};

/// One row of Table V.
struct AccuracyRow {
  std::string method_class;
  std::string method;
  core::AccuracyReport report;
};

/// Renders rows in the Table V layout, underlining the best test column
/// values, and prints the Figure 1 summary (best vs second-best deltas).
void PrintTableV(const std::vector<AccuracyRow>& rows);

/// Builds the shared dataset for the given scale.
river::RiverDataset MakeDataset(const Scale& scale);

/// Table V method runners. Each returns its row(s) on `dataset`.
AccuracyRow RunManualMethod(const river::RiverDataset& dataset);
std::vector<AccuracyRow> RunCalibrationMethods(
    const river::RiverDataset& dataset, const Scale& scale);
std::vector<AccuracyRow> RunArimaxMethods(const river::RiverDataset& dataset);
std::vector<AccuracyRow> RunRnnMethods(const river::RiverDataset& dataset,
                                       const Scale& scale);
AccuracyRow RunGggpMethod(const river::RiverDataset& dataset,
                          const Scale& scale);

/// Runs GMR `scale.runs` times and returns (row, all run results).
struct GmrOutcome {
  AccuracyRow row;
  std::vector<core::GmrRunResult> runs;
};
GmrOutcome RunGmrMethod(const river::RiverDataset& dataset,
                        const Scale& scale);

/// GMR configuration for the scale (shared by several benches).
core::GmrConfig MakeGmrConfig(const Scale& scale, std::uint64_t seed);

}  // namespace gmr::bench

#endif  // GMR_BENCH_HARNESS_H_
