// Batch-compiled population evaluation benchmark: (1) compiler-invocation
// amortization of the generation JIT (one TU per generation vs one TU per
// model, structure-hash compile cache), and (2) SoA rollout throughput at
// lane widths 1/4/8/16 through BatchSimulateBPhy.
//
// Emits BENCH_batch.json (schema_version 2); batched rows carry the
// `batch_width` and `compile_cache_hit_rate` stats fields.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "expr/ast.h"
#include "expr/batch_jit.h"
#include "expr/jit.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"

namespace {

namespace e = gmr::expr;
using gmr::river::CompiledBackend;
using gmr::river::RiverDataset;
using gmr::river::SimulationConfig;

/// A synthetic "generation": `population` candidate ODE pairs in which only
/// `unique_structures` distinct tree shapes occur — the shape distribution
/// TAG3P crossover actually produces (duplicates are common, which is what
/// the structure-hash cache exploits).
std::vector<std::vector<e::ExprPtr>> MakeGeneration(int population,
                                                    int unique_structures) {
  using gmr::river::kBPhy;
  using gmr::river::kBZoo;
  std::vector<std::vector<e::ExprPtr>> generation;
  generation.reserve(static_cast<std::size_t>(population));
  for (int i = 0; i < population; ++i) {
    const int shape = i % unique_structures;
    // Vary structure (not just constants) so every shape gets its own
    // structural hash: a growth chain of `shape` extra Mul links.
    e::ExprPtr growth = e::Mul(e::Parameter(0, "p0"),
                               e::Variable(kBPhy, "B"));
    for (int d = 0; d < shape; ++d) {
      growth = e::Mul(growth, e::Max(e::Parameter(1, "p1"),
                                     e::Constant(0.5 + 0.25 * d)));
    }
    std::vector<e::ExprPtr> equations;
    equations.push_back(
        e::Sub(std::move(growth),
               e::Mul(e::Parameter(1, "p1"), e::Variable(kBZoo, "Z"))));
    equations.push_back(
        e::Mul(e::Parameter(2, "p2"), e::Variable(kBPhy, "B")));
    generation.push_back(std::move(equations));
  }
  return generation;
}

std::vector<std::vector<double>> MakeLanes(std::size_t width) {
  std::vector<std::vector<double>> lanes;
  lanes.reserve(width);
  for (std::size_t l = 0; l < width; ++l) {
    lanes.push_back({0.01 * static_cast<double>(l + 1), 0.005,
                     0.002 * static_cast<double>(l + 1)});
  }
  return lanes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const bench::Scale scale = bench::Scale::FromEnvironment();

  bench::ConfigHasher hasher;
  hasher.Add("population", scale.population);
  hasher.Add("data_years", scale.data_years);
  const std::uint64_t config_hash = hasher.hash();
  std::vector<bench::BenchRow> rows;

  // ------------------------------------------------ compile amortization
  // One generation of `population` individuals (2 equations each) with the
  // duplicate-heavy structure distribution of real TAG3P populations.
  const int population = std::min(scale.population, 64);
  const int unique_structures = 12;
  const auto generation = MakeGeneration(population, unique_structures);

  std::printf("[bench_batch] generation JIT vs per-model JIT\n");
  std::printf("population %d (x2 equations), %d unique structures\n\n",
              population, unique_structures);

  if (expr::JitAvailable()) {
    // Per-model path: one compiler invocation per individual equation,
    // exactly what the paper's Section III-D mechanism costs. A small
    // sample extrapolates the full-generation cost so "quick" scale stays
    // quick on the 1-CPU container.
    const int sample = std::min(population, 8);
    Timer per_model_timer;
    int per_model_invocations = 0;
    for (int i = 0; i < sample; ++i) {
      for (const e::ExprPtr& equation : generation[static_cast<size_t>(i)]) {
        std::string error;
        auto program = expr::JitProgram::Compile(*equation, &error);
        if (program != nullptr) ++per_model_invocations;
      }
    }
    const double per_model_seconds = per_model_timer.ElapsedSeconds();
    const double per_model_rate =
        per_model_invocations / per_model_seconds;
    const double per_model_generation =
        static_cast<double>(2 * population);  // invocations, extrapolated

    // Batched path: every equation of the generation through ONE
    // CompileBatch call — one TU, one compiler invocation, deduplicated by
    // structural hash.
    expr::JitCircuitBreaker breaker;
    expr::BatchJitSession session(&breaker);
    std::vector<const e::Expr*> roots;
    for (const auto& individual : generation) {
      for (const e::ExprPtr& equation : individual) {
        roots.push_back(equation.get());
      }
    }
    Timer batch_timer;
    const auto fns = session.CompileBatch(roots);
    const double batch_seconds = batch_timer.ElapsedSeconds();
    // Second generation with the same structures: pure cache hits.
    session.CompileBatch(roots);
    const expr::BatchJitSession::Stats stats = session.stats();

    const double batch_rate = static_cast<double>(fns.size()) / batch_seconds;
    const double invocation_ratio =
        per_model_generation / static_cast<double>(stats.tu_compiles);
    std::printf("%-12s %22s %18s %16s\n", "method", "compiler invocations",
                "models/sec", "cache hit rate");
    std::printf("%-12s %22.0f %18.1f %16s\n", "per-model",
                per_model_generation, per_model_rate, "-");
    std::printf("%-12s %22zu %18.1f %15.0f%%\n", "generation",
                static_cast<std::size_t>(stats.tu_compiles), batch_rate,
                100.0 * stats.HitRate());
    std::printf("-> %.0fx fewer compiler invocations per generation "
                "(acceptance floor: 5x)\n\n", invocation_ratio);

    bench::BenchRow per_model_row("per_model_jit", 3, config_hash);
    per_model_row.Add("compiler_invocations", per_model_generation);
    per_model_row.Add("models_per_sec", per_model_rate);
    per_model_row.Add("sample_models", 2.0 * sample);
    rows.push_back(std::move(per_model_row));

    bench::BenchRow batch_row("generation_jit", 3, config_hash);
    batch_row.Add("compiler_invocations",
                  static_cast<double>(stats.tu_compiles));
    batch_row.Add("models_per_sec", batch_rate);
    batch_row.Add("symbols_compiled",
                  static_cast<double>(stats.symbols_compiled));
    batch_row.Add("compile_cache_hit_rate", stats.HitRate());
    batch_row.Add("invocation_ratio", invocation_ratio);
    rows.push_back(std::move(batch_row));
  } else {
    std::printf("(no C compiler available; skipping the JIT comparison)\n\n");
  }

  // ---------------------------------------------------- lane-width sweep
  // Rollout throughput (lane-days/sec) of BatchSimulateBPhy at widths
  // 1/4/8/16 on the synthetic dataset. The batch VM needs no compiler, so
  // this half always runs; width 1 is the scalar baseline (SoA == AoS at
  // stride 1). On the 1-CPU container the gain is pure locality/dispatch
  // amortization — one bytecode walk per lane block instead of per lane.
  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const std::size_t days = dataset.train_end;
  const auto equations = MakeGeneration(1, 1)[0];

  SimulationConfig sim_config;
  sim_config.compiled_backend = CompiledBackend::kBatchVm;

  std::printf("[bench_batch] SoA rollout throughput by lane width\n");
  std::printf("%zu training days, batch VM backend\n\n", days);
  std::printf("%-12s %16s %14s\n", "batch_width", "lane-days/sec",
              "vs width 1");

  // Repeat small widths so every row integrates the same lane-day volume,
  // and keep the best of a few trials per width (the usual best-of-N
  // defense against scheduler noise on the 1-CPU container).
  const std::size_t widths[] = {1, 4, 8, 16};
  const std::size_t lane_volume = 256;
  const int trials = 3;
  double width1_rate = 0.0;
  for (const std::size_t width : widths) {
    const auto lanes = MakeLanes(width);
    const std::size_t repeats = lane_volume / width;
    double best_seconds = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      Timer timer;
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto result = river::BatchSimulateBPhy(
            equations, lanes, dataset, 0, days, dataset.initial_bphy,
            dataset.initial_bzoo, sim_config);
        if (result.width != width) return 1;
      }
      const double seconds = timer.ElapsedSeconds();
      if (trial == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    const double lane_days =
        static_cast<double>(lane_volume) * static_cast<double>(days);
    const double rate = lane_days / best_seconds;
    if (width == 1) width1_rate = rate;
    std::printf("%-12zu %16.0f %13.2fx\n", width, rate, rate / width1_rate);

    bench::BenchRow row("rollout_w" + std::to_string(width), 3, config_hash);
    row.Add("batch_width", static_cast<double>(width));
    row.Add("lane_days_per_sec", rate);
    row.Add("days", static_cast<double>(days));
    row.Add("throughput_vs_width1", rate / width1_rate);
    rows.push_back(std::move(row));
  }

  bench::WriteBenchJson("BENCH_batch.json", "batch", options.threads, rows);
  std::printf("\nwrote BENCH_batch.json\n");
  return 0;
}
