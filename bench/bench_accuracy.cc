// Reproduces Table V and Figure 1: forecasting accuracy of all fifteen
// methods (knowledge-driven, data-driven, model calibration, model revision)
// on the synthetic Nakdong-like dataset.
//
// Scale: set GMR_BENCH_SCALE=full for a paper-scale run (hours); the default
// quick scale preserves the ranking shape in minutes.

#include <cstdio>

#include "bench/harness.h"
#include "common/timer.h"
#include "expr/print.h"

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const bench::Scale scale = bench::Scale::FromEnvironment();
  std::printf(
      "[Table V / Figure 1] accuracy comparison — %d data years "
      "(%d train), GP population %d x %d generations, %d runs\n\n",
      scale.data_years, scale.train_years, scale.population,
      scale.generations, scale.runs);

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  std::vector<bench::AccuracyRow> rows;
  Timer timer;

  rows.push_back(bench::RunManualMethod(dataset));
  std::printf("MANUAL done (%.1fs)\n", timer.ElapsedSeconds());

  for (auto& row : bench::RunRnnMethods(dataset, scale)) {
    rows.push_back(std::move(row));
  }
  std::printf("RNN done (%.1fs)\n", timer.ElapsedSeconds());

  for (auto& row : bench::RunArimaxMethods(dataset)) {
    rows.push_back(std::move(row));
  }
  std::printf("ARIMAX done (%.1fs)\n", timer.ElapsedSeconds());

  for (auto& row : bench::RunCalibrationMethods(dataset, scale)) {
    rows.push_back(std::move(row));
  }
  std::printf("calibration done (%.1fs)\n", timer.ElapsedSeconds());

  rows.push_back(bench::RunGggpMethod(dataset, scale));
  std::printf("GGGP done (%.1fs)\n", timer.ElapsedSeconds());

  const bench::GmrOutcome gmr = bench::RunGmrMethod(dataset, scale);
  rows.push_back(gmr.row);
  std::printf("GMR done (%.1fs)\n\n", timer.ElapsedSeconds());

  bench::PrintTableV(rows);

  // Machine-readable Table V (shared bench schema): one row per method.
  const std::uint64_t scale_hash =
      bench::ConfigHasher()
          .Add("data_years", scale.data_years)
          .Add("train_years", scale.train_years)
          .Add("population", scale.population)
          .Add("generations", scale.generations)
          .Add("runs", scale.runs)
          .Add("calibration_budget",
               static_cast<double>(scale.calibration_budget))
          .hash();
  std::vector<bench::BenchRow> json_rows;
  for (const bench::AccuracyRow& row : rows) {
    bench::BenchRow json_row(row.method, scale.data_seed, scale_hash);
    json_row.Add("train_rmse", row.report.train_rmse);
    json_row.Add("train_mae", row.report.train_mae);
    json_row.Add("test_rmse", row.report.test_rmse);
    json_row.Add("test_mae", row.report.test_mae);
    json_rows.push_back(std::move(json_row));
  }
  bench::WriteBenchJson("BENCH_accuracy.json", "accuracy", options.threads,
                        json_rows);

  // Show the best revised process for inspection (Section IV-E flavor).
  double best = 1e300;
  const core::GmrRunResult* best_run = nullptr;
  for (const auto& run : gmr.runs) {
    if (run.test_rmse < best) {
      best = run.test_rmse;
      best_run = &run;
    }
  }
  if (best_run != nullptr) {
    std::printf("\nBest revised process (GMR):\n%s",
                core::DescribeModel(best_run->best_equations).c_str());
  }
  return 0;
}
