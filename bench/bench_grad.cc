// Reverse-mode gradient benchmarks: (1) the wall-clock overhead of one
// discrete-adjoint gradient (forward rollout + day-checkpointed reverse
// sweep over the tapes) relative to a plain value rollout, under Euler and
// RK4; (2) evaluations-to-target on a toy calibration problem — the GA runs
// its full budget, then L-BFGS (fed exact adjoint gradients) is measured on
// how many rollouts it needs to first match the GA's final RMSE. The
// acceptance bar is <= 20% of the GA's rollout count. Results land in
// BENCH_grad.json (shared bench schema v2).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "calibrate/calibrator.h"
#include "calibrate/methods.h"
#include "common/timer.h"
#include "expr/ast.h"
#include "grad/adjoint.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"
#include "river/variables.h"

namespace {

using namespace gmr;
namespace e = gmr::expr;
namespace r = gmr::river;

/// The toy plankton system whose parameters the calibration half recovers:
/// light-driven growth with quadratic grazing, smooth in every parameter.
std::vector<e::ExprPtr> ToyEquations() {
  const e::ExprPtr b = e::Variable(r::kBPhy, "B_Phy");
  const e::ExprPtr z = e::Variable(r::kBZoo, "B_Zoo");
  const e::ExprPtr lgt = e::Variable(r::kVlgt, "V_lgt");
  return {
      e::Sub(e::Mul(e::Parameter(0, "p0"), lgt),
             e::Mul(e::Parameter(1, "p1"), e::Mul(b, z))),
      e::Sub(e::Mul(e::Parameter(2, "p2"), e::Mul(b, z)),
             e::Mul(e::Constant(0.1), z)),
  };
}

const std::vector<double> kTrueParameters = {0.4, 0.05, 0.06};

/// Drivers from the synthetic Nakdong pipeline; the observation is replaced
/// by the toy system's own trajectory under the true parameters, so the
/// calibration optimum is a known interior point with near-zero RMSE.
r::RiverDataset MakeToyDataset(const bench::Scale& scale) {
  r::RiverDataset dataset = bench::MakeDataset(scale);
  const r::SimulationConfig config;
  const r::SimulationTrajectory truth =
      r::Simulate(ToyEquations(), kTrueParameters, dataset, 0,
                  dataset.num_days, r::ConstituentSet::LegacyPlankton(),
                  {5.0, 1.0}, config, /*compiled=*/true);
  dataset.observed_bphy = truth.series[0];
  return dataset;
}

struct RolloutTiming {
  double forward_seconds = 0.0;   ///< Per value-only rollout.
  double gradient_seconds = 0.0;  ///< Per adjoint gradient (value included).
  double tape_nodes = 0.0;
  double pruned_nodes = 0.0;
};

RolloutTiming TimeRollouts(const r::RiverDataset& dataset,
                           r::IntegrationMethod method, int repeats) {
  r::SimulationConfig config;
  config.method = method;
  const std::vector<e::ExprPtr> equations = ToyEquations();
  const r::ConstituentSet constituents = r::ConstituentSet::LegacyPlankton();
  const calibrate::Objective objective =
      grad::MakeRmseObjective(equations, &dataset, 0, dataset.train_end,
                              constituents, {5.0, 1.0}, config);

  RolloutTiming timing;
  double sink = 0.0;
  Timer timer;
  for (int i = 0; i < repeats; ++i) sink += objective(kTrueParameters);
  timing.forward_seconds = timer.ElapsedSeconds() / repeats;

  timer.Restart();
  grad::GradientResult result;
  for (int i = 0; i < repeats; ++i) {
    result = grad::RmseGradient(equations, kTrueParameters, dataset, 0,
                                dataset.train_end, constituents, {5.0, 1.0},
                                config);
    sink += result.rmse;
  }
  timing.gradient_seconds = timer.ElapsedSeconds() / repeats;
  timing.tape_nodes = static_cast<double>(result.tape_nodes);
  timing.pruned_nodes = static_cast<double>(result.pruned_nodes);
  if (sink == -1.0) std::printf("%f\n", sink);  // keep the loops live
  return timing;
}

/// Objective wrapper counting rollouts and recording the first call index
/// at which the value reached `target` (gradient calls count as one rollout
/// each, exactly like the calibration budget charges them).
struct CountingProblem {
  calibrate::Objective value;
  calibrate::GradientObjective gradient;
  std::size_t calls = 0;
  std::size_t calls_to_target = 0;
  double target = -1.0;
  double best = 1e300;

  void Note(double f) {
    ++calls;
    best = std::min(best, f);
    if (calls_to_target == 0 && target >= 0.0 && f <= target) {
      calls_to_target = calls;
    }
  }

  calibrate::Objective CountedValue() {
    return [this](const std::vector<double>& x) {
      const double f = value(x);
      Note(f);
      return f;
    };
  }

  calibrate::GradientObjective CountedGradient() {
    return [this](const std::vector<double>& x, std::vector<double>* g) {
      const double f = gradient(x, g);
      Note(f);
      return f;
    };
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const bench::Scale scale = bench::Scale::FromEnvironment();
  const r::RiverDataset dataset = MakeToyDataset(scale);

  bench::ConfigHasher hasher;
  hasher.Add("data_years", scale.data_years)
      .Add("train_years", scale.train_years)
      .Add("data_seed", static_cast<double>(scale.data_seed))
      .Add("train_days", static_cast<double>(dataset.train_end));
  const std::uint64_t config_hash = hasher.hash();

  std::printf("[grad] adjoint overhead, %zu training days, toy plankton "
              "system\n\n",
              dataset.train_end);

  // Warm caches, then time.
  TimeRollouts(dataset, r::IntegrationMethod::kEuler, 2);
  const int repeats = 20;
  const RolloutTiming euler =
      TimeRollouts(dataset, r::IntegrationMethod::kEuler, repeats);
  const RolloutTiming rk4 =
      TimeRollouts(dataset, r::IntegrationMethod::kRk4, repeats);

  std::printf("%-8s %14s %14s %10s %12s %12s\n", "method", "forward s",
              "gradient s", "overhead", "tape nodes", "pruned");
  for (const auto& [name, t] :
       {std::pair<const char*, const RolloutTiming&>{"euler", euler},
        std::pair<const char*, const RolloutTiming&>{"rk4", rk4}}) {
    std::printf("%-8s %14.6f %14.6f %9.2fx %12.0f %12.0f\n", name,
                t.forward_seconds, t.gradient_seconds,
                t.gradient_seconds / t.forward_seconds, t.tape_nodes,
                t.pruned_nodes);
  }

  // ----- L-BFGS vs GA: rollouts to the GA's final RMSE -------------------
  calibrate::BoxBounds bounds;
  bounds.lo = {0.01, 0.005, 0.005};
  bounds.hi = {1.0, 0.5, 0.5};
  // Note: start inside the healthy dynamic regime. An overly aggressive
  // grazing start (e.g. p1 = 0.15) pins the trajectory against the state
  // clamp, where gradients are legitimately near-flat and descent crawls.
  const std::vector<double> initial = {0.5, 0.1, 0.1};
  const std::size_t ga_budget = std::min<std::size_t>(
      scale.calibration_budget, 2000);
  const r::SimulationConfig sim_config;

  CountingProblem ga_problem;
  ga_problem.value =
      grad::MakeRmseObjective(ToyEquations(), &dataset, 0, dataset.train_end,
                              r::ConstituentSet::LegacyPlankton(), {5.0, 1.0},
                              sim_config);
  {
    Rng rng(17);
    calibrate::GaCalibrator ga;
    ga.Calibrate(ga_problem.CountedValue(), bounds, initial, ga_budget, rng);
  }

  CountingProblem lbfgs_problem;
  lbfgs_problem.value = ga_problem.value;
  lbfgs_problem.gradient = grad::MakeRmseGradientObjective(
      ToyEquations(), &dataset, 0, dataset.train_end,
      r::ConstituentSet::LegacyPlankton(), {5.0, 1.0}, sim_config);
  lbfgs_problem.target = ga_problem.best;
  {
    Rng rng(17);
    calibrate::LbfgsCalibrator lbfgs;
    lbfgs.CalibrateWithGradient(lbfgs_problem.CountedValue(),
                                lbfgs_problem.CountedGradient(), bounds,
                                initial, ga_budget, rng, obs::RunContext{});
  }

  const double ga_rollouts = static_cast<double>(ga_problem.calls);
  const double lbfgs_rollouts =
      static_cast<double>(lbfgs_problem.calls_to_target > 0
                              ? lbfgs_problem.calls_to_target
                              : lbfgs_problem.calls);
  const bool reached = lbfgs_problem.calls_to_target > 0;
  const double ratio = lbfgs_rollouts / ga_rollouts;

  std::printf("\n[grad] GA final RMSE %.6g after %.0f rollouts\n",
              ga_problem.best, ga_rollouts);
  std::printf("[grad] L-BFGS %s the GA's RMSE after %.0f rollouts "
              "(%.1f%% of GA; best %.6g)\n",
              reached ? "reached" : "did NOT reach", lbfgs_rollouts,
              100.0 * ratio, lbfgs_problem.best);
  std::printf("[grad] evals-to-target acceptance (<= 20%% of GA): %s\n",
              reached && ratio <= 0.2 ? "PASS" : "FAIL");

  std::vector<bench::BenchRow> rows;
  {
    bench::BenchRow row("forward_euler", scale.data_seed, config_hash);
    row.Add("seconds_per_rollout", euler.forward_seconds);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("adjoint_euler", scale.data_seed, config_hash);
    row.Add("seconds_per_gradient", euler.gradient_seconds);
    row.Add("overhead_ratio", euler.gradient_seconds / euler.forward_seconds);
    row.Add("tape_nodes", euler.tape_nodes);
    row.Add("pruned_nodes", euler.pruned_nodes);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("forward_rk4", scale.data_seed, config_hash);
    row.Add("seconds_per_rollout", rk4.forward_seconds);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("adjoint_rk4", scale.data_seed, config_hash);
    row.Add("seconds_per_gradient", rk4.gradient_seconds);
    row.Add("overhead_ratio", rk4.gradient_seconds / rk4.forward_seconds);
    row.Add("tape_nodes", rk4.tape_nodes);
    row.Add("pruned_nodes", rk4.pruned_nodes);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("GA", 17, config_hash);
    row.Add("rollouts", ga_rollouts);
    row.Add("final_rmse", ga_problem.best);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("L-BFGS", 17, config_hash);
    row.Add("rollouts_to_ga_rmse", lbfgs_rollouts);
    row.Add("reached_target", reached ? 1 : 0);
    row.Add("rollout_ratio_vs_ga", ratio);
    row.Add("final_rmse", lbfgs_problem.best);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_grad.json", "grad", options.threads, rows);
  return 0;
}
