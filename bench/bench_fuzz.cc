// Throughput of the property-based testing subsystem (src/check/): case
// generation, each differential oracle, the greedy shrinker, and the
// end-to-end fuzz loop. Results land in BENCH_fuzz.json; the point of the
// numbers is budgeting — how many iterations the 2000-case `fuzz_smoke`
// ctest entry and a soak run (GMR_FUZZ_ITERS) buy per second.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "check/fuzz.h"
#include "check/gen.h"
#include "check/oracles.h"
#include "check/shrink.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace {

using namespace gmr;

bool ContainsDiv(const expr::Expr& node) {
  if (node.kind() == expr::NodeKind::kDiv) return true;
  for (const auto& child : node.children()) {
    if (ContainsDiv(*child)) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const check::GenConfig config = check::RiverGenConfig();
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }

  constexpr std::uint64_t kSeed = 1;
  constexpr std::size_t kGenCount = 20000;
  constexpr std::size_t kOracleCount = 2000;
  constexpr int kJitCount = 4;  // ~100 ms of compiler fork per case
  constexpr int kShrinkCount = 200;

  const std::uint64_t config_hash = bench::ConfigHasher()
                                        .Add("gen_count", kGenCount)
                                        .Add("oracle_count", kOracleCount)
                                        .Add("max_depth", config.max_depth)
                                        .hash();
  std::vector<bench::BenchRow> rows;

  // Generator throughput (also the population used by the oracle rows).
  Timer gen_timer;
  const auto population =
      check::GeneratePopulation(config, kGenCount, kSeed, pool.get());
  {
    const double seconds = gen_timer.ElapsedSeconds();
    bench::BenchRow row("gen", kSeed, config_hash);
    row.Add("trees", static_cast<double>(population.size()));
    row.Add("seconds", seconds);
    row.Add("trees_per_second", static_cast<double>(population.size()) /
                                    (seconds > 0 ? seconds : 1e-9));
    rows.push_back(row);
    std::printf("%-10s %8zu trees   %8.3f s   %10.0f/s\n", "gen",
                population.size(), seconds,
                row.stats.back().second);
  }

  // Per-oracle throughput over the shared population (jit is subsampled:
  // each case forks the system C compiler).
  check::OracleContext oracle_ctx;
  oracle_ctx.config = &config;
  Rng param_rng(check::CaseSeed(kSeed, 0xbe7cu));
  for (const std::string& name : check::ExprOracleNames()) {
    const check::ExprOracle oracle = check::FindExprOracle(name);
    const std::size_t count = name == "jit"
                                  ? static_cast<std::size_t>(kJitCount)
                                  : kOracleCount;
    std::size_t failures = 0;
    Timer timer;
    for (std::size_t i = 0; i < count; ++i) {
      check::ExprCase c;
      c.seed = check::CaseSeed(kSeed, i);
      c.tree = population[i % population.size()];
      c.parameters = check::RandomParameters(config, param_rng);
      if (!oracle(c, oracle_ctx).ok) ++failures;
    }
    const double seconds = timer.ElapsedSeconds();
    bench::BenchRow row("oracle_" + name, kSeed, config_hash);
    row.Add("cases", static_cast<double>(count));
    row.Add("failures", static_cast<double>(failures));
    row.Add("seconds", seconds);
    row.Add("cases_per_second",
            static_cast<double>(count) / (seconds > 0 ? seconds : 1e-9));
    rows.push_back(row);
    std::printf("%-10s %8zu cases   %8.3f s   %10.0f/s   %zu failures\n",
                name.c_str(), count, seconds, row.stats.back().second,
                failures);
  }

  // Shrinker throughput on a synthetic always-reproducible failure: "the
  // tree still contains a division".
  {
    const auto still_fails = [](const expr::ExprPtr& tree) {
      return ContainsDiv(*tree);
    };
    std::size_t shrunk_trees = 0;
    std::size_t attempts = 0;
    Timer timer;
    for (int i = 0; shrunk_trees < kShrinkCount; ++i) {
      const expr::ExprPtr& tree = population[i % population.size()];
      if (!ContainsDiv(*tree)) continue;
      check::ShrinkStats stats;
      check::ShrinkExpr(tree, still_fails, /*max_attempts=*/500, &stats);
      attempts += static_cast<std::size_t>(stats.attempts);
      ++shrunk_trees;
    }
    const double seconds = timer.ElapsedSeconds();
    bench::BenchRow row("shrink", kSeed, config_hash);
    row.Add("trees", static_cast<double>(shrunk_trees));
    row.Add("predicate_calls", static_cast<double>(attempts));
    row.Add("seconds", seconds);
    row.Add("trees_per_second",
            static_cast<double>(shrunk_trees) / (seconds > 0 ? seconds : 1e-9));
    rows.push_back(row);
    std::printf("%-10s %8zu trees   %8.3f s   %10.0f/s\n", "shrink",
                shrunk_trees, seconds, row.stats.back().second);
  }

  // End-to-end fuzz loop at the ctest smoke budget.
  {
    check::FuzzOptions fuzz;
    fuzz.seed = kSeed;
    fuzz.iterations = 2000;
    fuzz.pool = pool.get();
    Timer timer;
    const check::FuzzReport report = check::RunFuzz(fuzz);
    const double seconds = timer.ElapsedSeconds();
    bench::BenchRow row("fuzz_loop", kSeed, config_hash);
    row.Add("iterations", static_cast<double>(fuzz.iterations));
    row.Add("case_checks", static_cast<double>(report.total_cases));
    row.Add("failures", static_cast<double>(report.total_failures));
    row.Add("seconds", seconds);
    row.Add("checks_per_second", static_cast<double>(report.total_cases) /
                                     (seconds > 0 ? seconds : 1e-9));
    rows.push_back(row);
    std::printf("%-10s %8llu checks  %8.3f s   %10.0f/s   %llu failures\n",
                "fuzz_loop",
                static_cast<unsigned long long>(report.total_cases), seconds,
                row.stats.back().second,
                static_cast<unsigned long long>(report.total_failures));
  }

  bench::WriteBenchJson("BENCH_fuzz.json", "fuzz", options.threads, rows);
  return 0;
}
