// Reproduces Figure 11: the effect of evaluation short-circuiting (ES) as
// the threshold is varied (No ES, TH-0.7, TH-1.0, TH-1.3) on
//   - the number of evaluated time steps,
//   - train RMSE and test RMSE of the best models,
//   - the percentage of best models that were fully evaluated.
// Values are reported relative to ES TH-1.0, as in the figure.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace {

struct Variant {
  const char* name;
  bool es;
  double threshold;
};

struct Measurement {
  double time_steps = 0.0;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double fully_evaluated_pct = 0.0;
  std::uint64_t config_hash = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  scale.population = std::min(scale.population, 30);
  scale.generations = std::min(scale.generations, 12);
  const int runs = std::max(scale.runs, 4);

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();

  const Variant variants[] = {
      {"No ES", false, 1.0},
      {"ES TH-0.7", true, 0.7},
      {"ES TH-1.0", true, 1.0},
      {"ES TH-1.3", true, 1.3},
  };

  std::printf("[Figure 11] effect of ES thresholds (%d runs each)\n\n", runs);

  std::vector<Measurement> results;
  for (const Variant& variant : variants) {
    Measurement m;
    for (int run = 0; run < runs; ++run) {
      core::GmrConfig config =
          bench::MakeGmrConfig(scale, 40 + static_cast<std::uint64_t>(run));
      config.tag3p.speedups.short_circuiting = variant.es;
      config.tag3p.speedups.es_threshold = variant.threshold;
      m.config_hash = bench::HashGmrConfig(config);
      const core::GmrRunResult result =
          core::RunGmr(config, core::GmrProblem{&dataset, &knowledge});
      m.time_steps +=
          static_cast<double>(result.search.eval_stats.time_steps_evaluated);
      m.train_rmse += result.train_rmse;
      m.test_rmse += result.test_rmse;
      m.fully_evaluated_pct += result.best.fully_evaluated ? 100.0 : 0.0;
    }
    m.time_steps /= runs;
    m.train_rmse /= runs;
    m.test_rmse /= runs;
    m.fully_evaluated_pct /= runs;
    results.push_back(m);
  }

  const Measurement& reference = results[2];  // ES TH-1.0
  std::printf("%-10s %16s %12s %12s %18s\n", "Variant", "# eval steps",
              "RMSE(train)", "RMSE(test)", "% fully-eval best");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-10s %16.0f %12.3f %12.3f %17.0f%%\n", variants[i].name,
                results[i].time_steps, results[i].train_rmse,
                results[i].test_rmse, results[i].fully_evaluated_pct);
  }
  std::printf("\nrelative to ES TH-1.0 (the Figure 11 encoding):\n");
  std::printf("%-10s %16s %12s %12s %18s\n", "Variant", "# eval steps",
              "RMSE(train)", "RMSE(test)", "% fully-eval best");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto rel = [](double v, double ref) {
      return ref == 0.0 ? 0.0 : v / ref;
    };
    std::printf("%-10s %16.2f %12.2f %12.2f %18.2f\n", variants[i].name,
                rel(results[i].time_steps, reference.time_steps),
                rel(results[i].train_rmse, reference.train_rmse),
                rel(results[i].test_rmse, reference.test_rmse),
                rel(results[i].fully_evaluated_pct,
                    reference.fully_evaluated_pct));
  }

  std::vector<bench::BenchRow> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    bench::BenchRow row(variants[i].name, /*run_seed=*/40,
                        results[i].config_hash);
    row.Add("es", variants[i].es ? 1 : 0);
    row.Add("threshold", variants[i].threshold);
    row.Add("time_steps", results[i].time_steps);
    row.Add("train_rmse", results[i].train_rmse);
    row.Add("test_rmse", results[i].test_rmse);
    row.Add("fully_evaluated_pct", results[i].fully_evaluated_pct);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_es_threshold.json", "es_threshold",
                        options.threads, rows);
  return 0;
}
