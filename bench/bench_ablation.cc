// Ablation study of GMR design choices beyond the paper's figures (see
// DESIGN.md §2): local search on/off, algebraic simplification's effect on
// the tree-cache hit rate, Gaussian sigma ramp-down on/off, and the value of
// knowledge seeding (full vs minimal initial derivations).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"

namespace {

using namespace gmr;

struct AblationResult {
  const char* name;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double cache_hit_pct = 0.0;
  double seconds = 0.0;
  std::uint64_t config_hash = 0;
};

AblationResult RunVariant(const char* name,
                          const river::RiverDataset& dataset,
                          const core::RiverPriorKnowledge& knowledge,
                          const bench::Scale& scale,
                          void (*tweak)(core::GmrConfig*), int runs) {
  AblationResult ablation;
  ablation.name = name;
  for (int run = 0; run < runs; ++run) {
    core::GmrConfig config =
        bench::MakeGmrConfig(scale, 300 + static_cast<std::uint64_t>(run));
    tweak(&config);
    ablation.config_hash = bench::HashGmrConfig(config);
    Timer timer;
    const core::GmrRunResult result =
        core::RunGmr(config, core::GmrProblem{&dataset, &knowledge});
    ablation.seconds += timer.ElapsedSeconds();
    ablation.train_rmse += result.train_rmse;
    ablation.test_rmse += result.test_rmse;
    const auto& stats = result.search.eval_stats;
    ablation.cache_hit_pct += 100.0 * stats.CacheHitRate();
  }
  ablation.train_rmse /= runs;
  ablation.test_rmse /= runs;
  ablation.cache_hit_pct /= runs;
  ablation.seconds /= runs;
  return ablation;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  scale.population = std::min(scale.population, 30);
  scale.generations = std::min(scale.generations, 15);
  const int runs = std::max(3, scale.runs);

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();

  std::printf("[Ablations] GMR design choices (%d runs each)\n\n", runs);

  std::vector<AblationResult> results;
  results.push_back(RunVariant(
      "baseline", dataset, knowledge, scale,
      [](core::GmrConfig*) {}, runs));
  results.push_back(RunVariant(
      "no local search", dataset, knowledge, scale,
      [](core::GmrConfig* c) { c->tag3p.local_search_steps = 0; }, runs));
  results.push_back(RunVariant(
      "no simplification", dataset, knowledge, scale,
      [](core::GmrConfig* c) {
        c->tag3p.speedups.simplify_before_eval = false;
      },
      runs));
  results.push_back(RunVariant(
      "no sigma ramp-down", dataset, knowledge, scale,
      [](core::GmrConfig* c) { c->tag3p.sigma_rampdown_generations = 0; },
      runs));
  results.push_back(RunVariant(
      "minimal init (size 2)", dataset, knowledge, scale,
      [](core::GmrConfig* c) { c->tag3p.bounds.max_size = 8; }, runs));
  results.push_back(RunVariant(
      "no elitism", dataset, knowledge, scale,
      [](core::GmrConfig* c) { c->tag3p.elite_size = 0; }, runs));

  std::printf("%-22s %12s %12s %12s %10s\n", "Variant", "train RMSE",
              "test RMSE", "cache-hit%", "sec/run");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const AblationResult& r : results) {
    std::printf("%-22s %12.3f %12.3f %11.0f%% %10.2f\n", r.name,
                r.train_rmse, r.test_rmse, r.cache_hit_pct, r.seconds);
  }

  std::vector<bench::BenchRow> rows;
  for (const AblationResult& r : results) {
    bench::BenchRow row(r.name, /*run_seed=*/300, r.config_hash);
    row.Add("runs", runs);
    row.Add("train_rmse", r.train_rmse);
    row.Add("test_rmse", r.test_rmse);
    row.Add("cache_hit_pct", r.cache_hit_pct);
    row.Add("seconds_per_run", r.seconds);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_ablation.json", "ablation", options.threads,
                        rows);
  return 0;
}
