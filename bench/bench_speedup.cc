// Reproduces Figure 10: mean runtime (seconds) per individual under every
// combination of the three speedup techniques — TC (tree caching), ES
// (evaluation short-circuiting), RC (runtime compilation) — measured inside
// real GMR searches with identical seeds, plus the speedup factor relative
// to the no-speedup baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

struct Combo {
  const char* name;
  bool tc;
  bool es;
  bool rc;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  // The measurement only needs enough individuals for stable means; the
  // no-speedup combo pays full interpreted evaluations, so keep it modest.
  scale.population = std::min(scale.population, 30);
  scale.generations = std::min(scale.generations, 8);
  scale.local_search_steps = 2;

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);

  const Combo combos[] = {
      {"None", false, false, false}, {"TC", true, false, false},
      {"ES", false, true, false},    {"RC", false, false, true},
      {"TC+ES", true, true, false},  {"TC+RC", true, false, true},
      {"ES+RC", false, true, true},  {"TC+ES+RC", true, true, true},
  };

  std::printf(
      "[Figure 10] mean runtime per individual by speedup technique\n");
  std::printf("dataset: %zu training days; population %d x %d generations\n\n",
              dataset.train_end, scale.population, scale.generations);
  std::printf("%-10s %18s %14s %12s %12s\n", "Combo", "sec/individual",
              "individuals", "cache-hit%", "speedup");

  double baseline_per_individual = 0.0;
  std::vector<bench::BenchRow> rows;
  for (const Combo& combo : combos) {
    core::GmrConfig config = bench::MakeGmrConfig(scale, /*seed=*/3);
    config.tag3p.speedups.tree_caching = combo.tc;
    config.tag3p.speedups.short_circuiting = combo.es;
    config.tag3p.speedups.runtime_compilation = combo.rc;
    config.tag3p.speedups.num_threads = options.threads;

    gp::Tag3pConfig tag3p = config.tag3p;
    tag3p.seed_alpha_index = knowledge.seed_alpha_index;
    gp::Tag3pEngine engine(
        gp::Tag3pProblem{&knowledge.grammar, &fitness, knowledge.priors},
        tag3p, obs::RunContext{});
    engine.Run();
    const gp::EvalStats& stats = engine.evaluator().stats();

    // Individuals processed = simulated evaluations + cache hits (a hit
    // still "evaluates" an individual, nearly for free). Wall-clock (not
    // per-lane CPU) is what Figure 10 reports.
    const std::size_t processed =
        stats.individuals_evaluated + stats.cache_hits;
    const double per_individual =
        stats.wall_seconds / static_cast<double>(processed);
    if (combo.name == std::string("None")) {
      baseline_per_individual = per_individual;
    }
    std::printf("%-10s %18.6f %14zu %11.0f%% %11.1fx\n", combo.name,
                per_individual, processed, 100.0 * stats.CacheHitRate(),
                baseline_per_individual / per_individual);

    bench::BenchRow row(combo.name, tag3p.seed,
                        bench::HashGmrConfig(config));
    row.Add("tc", combo.tc ? 1 : 0);
    row.Add("es", combo.es ? 1 : 0);
    row.Add("rc", combo.rc ? 1 : 0);
    row.Add("sec_per_individual", per_individual);
    row.Add("wall_seconds", stats.wall_seconds);
    row.Add("cpu_seconds", stats.cpu_seconds);
    row.Add("compile_seconds", stats.compile_seconds);
    row.Add("individuals", static_cast<double>(processed));
    row.Add("cache_hit_rate", stats.CacheHitRate());
    row.Add("static_rejects", static_cast<double>(stats.static_rejects));
    row.Add("speedup", baseline_per_individual / per_individual);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_speedup.json", "speedup", options.threads,
                        rows);
  std::printf(
      "\n(the paper reports 607x for TC+ES+RC on its testbed; the shape — "
      "every technique > 1x, multiplicative when combined — is the "
      "reproduction target)\n");
  return 0;
}
