#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "baselines/arimax.h"
#include "baselines/lstm.h"
#include "calibrate/methods.h"
#include "gggp/gggp.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/variables.h"

namespace gmr::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("GMR_BENCH_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0) options.threads = value;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int value = std::atoi(argv[++i]);
      if (value > 0) options.threads = value;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    }
  }
  return options;
}

ConfigHasher& ConfigHasher::Add(const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", key, value);
  for (const char* p = buffer; *p != '\0'; ++p) {
    hash_ ^= static_cast<unsigned char>(*p);
    hash_ *= 1099511628211ull;
  }
  return *this;
}

std::uint64_t HashGmrConfig(const core::GmrConfig& config) {
  const gp::Tag3pConfig& t = config.tag3p;
  const gp::SpeedupConfig& s = t.speedups;
  ConfigHasher hasher;
  hasher.Add("population_size", t.population_size)
      .Add("max_generations", t.max_generations)
      .Add("elite_size", t.elite_size)
      .Add("tournament_size", t.tournament_size)
      .Add("min_size", t.bounds.min_size)
      .Add("max_size", t.bounds.max_size)
      .Add("p_crossover", t.p_crossover)
      .Add("p_subtree_mutation", t.p_subtree_mutation)
      .Add("p_gaussian_mutation", t.p_gaussian_mutation)
      .Add("crossover_retries", t.crossover_retries)
      .Add("local_search_steps", t.local_search_steps)
      .Add("local_search_parameter_tweak", t.local_search_parameter_tweak)
      .Add("elite_polish_steps", t.elite_polish_steps)
      .Add("sigma_rampdown_generations", t.sigma_rampdown_generations)
      .Add("sigma_final_scale", t.sigma_final_scale)
      .Add("seed_alpha_index", t.seed_alpha_index)
      .Add("tree_caching", s.tree_caching)
      .Add("short_circuiting", s.short_circuiting)
      .Add("es_threshold", s.es_threshold)
      .Add("runtime_compilation", s.runtime_compilation)
      .Add("simplify_before_eval", s.simplify_before_eval)
      .Add("frontier_frozen",
           s.frontier_mode == gp::FrontierMode::kFrozenFrontier);
  return hasher.hash();
}

void WriteBenchJson(const std::string& path, const std::string& name,
                    int threads, const std::vector<BenchRow>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\n  \"bench\": \"%s\",\n  \"schema_version\": 2,\n"
               "  \"threads\": %d,\n",
               name.c_str(), threads);
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const BenchRow& row = rows[r];
    std::fprintf(file,
                 "    {\"method\": \"%s\", \"seed\": %llu, "
                 "\"config_hash\": \"%016llx\", \"stats\": {",
                 row.method.c_str(),
                 static_cast<unsigned long long>(row.seed),
                 static_cast<unsigned long long>(row.config_hash));
    for (std::size_t i = 0; i < row.stats.size(); ++i) {
      const auto& [key, value] = row.stats[i];
      std::fprintf(file, "%s\"%s\": %.9g", i == 0 ? "" : ", ", key.c_str(),
                   value);
    }
    std::fprintf(file, "}}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

Scale Scale::FromEnvironment() {
  Scale scale;
  const char* env = std::getenv("GMR_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    scale.data_years = 13;
    scale.train_years = 10;
    scale.local_search_steps = 5;
    scale.runs = 20;
    scale.gggp_runs = 8;
    scale.calibration_budget = 20000;
    scale.lstm_epochs = 300;
    scale.lstm_hidden_cap_all = 64;
  }
  return scale;
}

river::RiverDataset MakeDataset(const Scale& scale) {
  river::SyntheticConfig config;
  config.years = scale.data_years;
  config.train_years = scale.train_years;
  config.seed = scale.data_seed;
  return river::GenerateNakdongLike(config);
}

core::GmrConfig MakeGmrConfig(const Scale& scale, std::uint64_t seed) {
  core::GmrConfig config;
  config.tag3p.population_size = scale.population;
  config.tag3p.max_generations = scale.generations;
  config.tag3p.local_search_steps = scale.local_search_steps;
  config.tag3p.sigma_rampdown_generations =
      std::max(1, scale.generations / 5);
  config.tag3p.seed = seed;
  return config;
}

void PrintTableV(const std::vector<AccuracyRow>& rows) {
  double best_test_rmse = std::numeric_limits<double>::infinity();
  double best_test_mae = std::numeric_limits<double>::infinity();
  for (const AccuracyRow& row : rows) {
    best_test_rmse = std::min(best_test_rmse, row.report.test_rmse);
    best_test_mae = std::min(best_test_mae, row.report.test_mae);
  }

  std::printf("%-18s %-12s %14s %14s %14s %14s\n", "Method class", "Method",
              "Train RMSE", "Train MAE", "Test RMSE", "Test MAE");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (const AccuracyRow& row : rows) {
    const bool best_rmse = row.report.test_rmse == best_test_rmse;
    const bool best_mae = row.report.test_mae == best_test_mae;
    char rmse_buf[32];
    char mae_buf[32];
    std::snprintf(rmse_buf, sizeof(rmse_buf), "%.3f%s", row.report.test_rmse,
                  best_rmse ? " *" : "");
    std::snprintf(mae_buf, sizeof(mae_buf), "%.3f%s", row.report.test_mae,
                  best_mae ? " *" : "");
    std::printf("%-18s %-12s %14.3f %14.3f %14s %14s\n",
                row.method_class.c_str(), row.method.c_str(),
                row.report.train_rmse, row.report.train_mae, rmse_buf,
                mae_buf);
  }

  // Figure 1: best vs second-best deltas.
  std::vector<double> rmses;
  std::vector<double> maes;
  for (const AccuracyRow& row : rows) {
    rmses.push_back(row.report.test_rmse);
    maes.push_back(row.report.test_mae);
  }
  std::sort(rmses.begin(), rmses.end());
  std::sort(maes.begin(), maes.end());
  if (rmses.size() >= 2) {
    std::printf(
        "\n[Figure 1] best test RMSE %.3f vs second best %.3f (%.0f%% "
        "lower)\n",
        rmses[0], rmses[1], 100.0 * (1.0 - rmses[0] / rmses[1]));
    std::printf(
        "[Figure 1] best test MAE  %.3f vs second best %.3f (%.0f%% "
        "lower)\n",
        maes[0], maes[1], 100.0 * (1.0 - maes[0] / maes[1]));
  }
}

AccuracyRow RunManualMethod(const river::RiverDataset& dataset) {
  AccuracyRow row;
  row.method_class = "Knowledge-driven";
  row.method = "MANUAL";
  row.report = core::EvaluateAccuracy(
      river::ManualProcess(), gp::PriorMeans(river::RiverParameterPriors()),
      dataset, river::SimulationConfig{});
  return row;
}

std::vector<AccuracyRow> RunCalibrationMethods(
    const river::RiverDataset& dataset, const Scale& scale) {
  const auto priors = river::RiverParameterPriors();
  const auto manual = river::ManualProcess();
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  calibrate::Objective objective = [&](const std::vector<double>& params) {
    auto eval = fitness.Begin(manual, params, /*compiled=*/true);
    while (eval->Step()) {
    }
    return eval->CurrentFitness();
  };
  const calibrate::BoxBounds bounds = calibrate::BoundsFromPriors(priors);
  const std::vector<double> initial = gp::PriorMeans(priors);

  std::vector<AccuracyRow> rows;
  for (const auto& calibrator : calibrate::AllCalibrators()) {
    calibrate::CalibrationConfig config;
    config.budget = scale.calibration_budget;
    config.seed = 1000 + rows.size();
    const calibrate::CalibrationResult result = calibrate::Run(
        *calibrator, config,
        calibrate::CalibrationProblem{objective, bounds, initial});
    AccuracyRow row;
    row.method_class = "Model calibration";
    row.method = calibrator->name();
    row.report = core::EvaluateAccuracy(manual, result.best_parameters,
                                        dataset, river::SimulationConfig{});
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

/// The data-driven baselines forecast at the cadence the biomass is
/// actually measured (weekly at S1): predicting a linearly interpolated
/// daily series one day ahead is degenerate (the interpolant is locally
/// linear), so both ARIMAX and the RNN operate on the sampled series —
/// current-sample features predict the next sample's biomass. Process
/// models, by contrast, free-run the whole period.
struct SampledSeries {
  std::vector<double> y;
  std::vector<std::vector<double>> features;
  std::size_t train_count = 0;
};

SampledSeries MakeSampledSeries(const river::RiverDataset& dataset,
                                bool all_stations) {
  SampledSeries sampled;
  const auto& days = dataset.bphy_sample_days;
  sampled.y.reserve(days.size());
  for (std::size_t day : days) {
    sampled.y.push_back(dataset.observed_bphy[day]);
    if (day < dataset.train_end) ++sampled.train_count;
  }
  auto add_series = [&](const std::vector<double>& daily) {
    std::vector<double> at_samples;
    at_samples.reserve(days.size());
    for (std::size_t day : days) at_samples.push_back(daily[day]);
    sampled.features.push_back(std::move(at_samples));
  };
  if (all_stations && !dataset.station_drivers.empty()) {
    for (const auto& station : dataset.station_drivers) {
      for (const auto& series : station) add_series(series);
    }
  } else {
    for (int slot : river::ObservedVariableSlots()) {
      add_series(dataset.drivers[static_cast<std::size_t>(slot)]);
    }
  }
  return sampled;
}

}  // namespace

std::vector<AccuracyRow> RunArimaxMethods(
    const river::RiverDataset& dataset) {
  std::vector<AccuracyRow> rows;
  for (bool all : {false, true}) {
    const SampledSeries sampled = MakeSampledSeries(dataset, all);
    const baselines::ArimaxResult result =
        baselines::FitArimax(sampled.y, sampled.features,
                             sampled.train_count, baselines::ArimaxConfig{});
    AccuracyRow row;
    row.method_class = "Data-driven";
    row.method = all ? "ARIMAX-ALL" : "ARIMAX-S1";
    row.report.train_rmse = result.train_rmse;
    row.report.train_mae = result.train_mae;
    row.report.test_rmse = result.test_rmse;
    row.report.test_mae = result.test_mae;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<AccuracyRow> RunRnnMethods(const river::RiverDataset& dataset,
                                       const Scale& scale) {
  std::vector<AccuracyRow> rows;
  for (bool all : {false, true}) {
    const SampledSeries sampled = MakeSampledSeries(dataset, all);
    baselines::LstmConfig config;
    config.epochs = scale.lstm_epochs;
    config.seed = 17;
    config.window = 26;  // Half a year of weekly samples per BPTT window.
    if (all) config.hidden_cap = scale.lstm_hidden_cap_all;
    const baselines::LstmResult result = baselines::TrainAndEvaluateLstm(
        sampled.features, sampled.y, sampled.train_count, config);
    AccuracyRow row;
    row.method_class = "Data-driven";
    row.method = all ? "RNN-ALL" : "RNN-S1";
    // The paper reports the best model by test RMSE over training.
    row.report.train_rmse = result.train_rmse;
    row.report.train_mae = result.train_mae;
    row.report.test_rmse = result.best_test_rmse;
    row.report.test_mae = result.best_test_mae;
    rows.push_back(std::move(row));
  }
  return rows;
}

AccuracyRow RunGggpMethod(const river::RiverDataset& dataset,
                          const Scale& scale) {
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset);
  gggp::GggpConfig config;
  // "GGGP ... used a population of 1200 individuals to use the same number
  // of fitness evaluations" — 6x GMR's population (no local search).
  config.population_size = scale.population * 6;
  config.max_generations = scale.generations;
  config.sigma_rampdown_generations = std::max(1, scale.generations / 5);
  config.speedups.runtime_compilation = true;
  config.speedups.short_circuiting = true;
  config.speedups.tree_caching = false;

  const gggp::CfgGrammar grammar = gggp::RiverCfgGrammar();
  const gp::ParameterPriors priors = river::RiverParameterPriors();
  const gggp::GggpProblem problem{river::ManualProcess(), &grammar, &priors,
                                  &fitness};

  AccuracyRow row;
  row.method_class = "Model revision";
  row.method = "GGGP";
  double best_test = std::numeric_limits<double>::infinity();
  for (int run = 0; run < scale.gggp_runs; ++run) {
    config.seed = 500 + static_cast<std::uint64_t>(run);
    const gggp::GggpResult result = gggp::RunGggp(config, problem);
    const core::AccuracyReport report = core::EvaluateAccuracy(
        result.best.equations, result.best.parameters, dataset,
        river::SimulationConfig{});
    if (report.test_rmse < best_test) {
      best_test = report.test_rmse;
      row.report = report;
    }
  }
  return row;
}

GmrOutcome RunGmrMethod(const river::RiverDataset& dataset,
                        const Scale& scale) {
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  GmrOutcome outcome;
  outcome.row.method_class = "Model revision";
  outcome.row.method = "GMR";
  double best_test = std::numeric_limits<double>::infinity();
  const core::GmrProblem problem{&dataset, &knowledge};
  for (int run = 0; run < scale.runs; ++run) {
    const core::GmrConfig config =
        MakeGmrConfig(scale, 900 + static_cast<std::uint64_t>(run));
    core::GmrRunResult result = core::RunGmr(config, problem);
    if (result.test_rmse < best_test) {
      best_test = result.test_rmse;
      outcome.row.report.train_rmse = result.train_rmse;
      outcome.row.report.train_mae = result.train_mae;
      outcome.row.report.test_rmse = result.test_rmse;
      outcome.row.report.test_mae = result.test_mae;
    }
    outcome.runs.push_back(std::move(result));
  }
  return outcome;
}

}  // namespace gmr::bench
