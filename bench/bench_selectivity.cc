// Reproduces Figure 9 and the Section IV-E case study: the selectivity (%)
// of temporal variables among the best revised models, split by the sign of
// their perturbation response on phytoplankton growth, plus exemplar revised
// sub-processes (the analogs of paper Eqs. (7) and (8)).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/analysis.h"
#include "expr/print.h"
#include "river/variables.h"

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  // Figure 9 analyzes the 50 best models; at quick scale we collect the
  // best model of each of several independent runs.
  const int runs = std::max(scale.runs * 2, 6);
  scale.population = std::min(scale.population, 40);
  scale.generations = std::min(scale.generations, 20);

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();

  std::printf("[Figure 9] variable selectivity among %d best models\n\n",
              runs);

  std::vector<core::CandidateModel> models;
  std::vector<core::GmrRunResult> results;
  std::uint64_t config_hash = 0;
  for (int run = 0; run < runs; ++run) {
    const core::GmrConfig config =
        bench::MakeGmrConfig(scale, 7000 + static_cast<std::uint64_t>(run));
    config_hash = bench::HashGmrConfig(config);
    core::GmrRunResult result =
        core::RunGmr(config, core::GmrProblem{&dataset, &knowledge});
    core::CandidateModel model;
    model.equations = result.best_equations;
    model.parameters = result.best.parameters;
    models.push_back(std::move(model));
    results.push_back(std::move(result));
    std::printf("run %d: train RMSE %.3f, test RMSE %.3f\n", run,
                results.back().train_rmse, results.back().test_rmse);
  }

  core::SelectivityConfig config;
  const core::SelectivityReport report =
      core::AnalyzeSelectivity(models, dataset, config);

  std::printf("\n%-8s %12s %12s %14s %14s\n", "Variable", "selected%",
              "correlated%", "inv-correl.%", "uncorrelated%");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const auto& entry : report.entries) {
    std::printf("%-8s %11.0f%% %11.0f%% %13.0f%% %13.0f%%\n",
                river::VariableName(entry.variable_slot), entry.selected_pct,
                entry.correlated_pct, entry.inversely_correlated_pct,
                entry.uncorrelated_pct);
  }

  // Case-study flavor (paper Eqs. (7)-(8)): print the revised equations of
  // the best run so discovered temperature/pH/alkalinity terms are visible.
  std::sort(results.begin(), results.end(),
            [](const core::GmrRunResult& a, const core::GmrRunResult& b) {
              return a.test_rmse < b.test_rmse;
            });
  std::printf("\nBest revised model (test RMSE %.3f):\n%s",
              results.front().test_rmse,
              core::DescribeModel(results.front().best_equations).c_str());

  // One row per observed variable (the Figure 9 bar chart, machine-readable).
  std::vector<bench::BenchRow> rows;
  for (const auto& entry : report.entries) {
    bench::BenchRow row(river::VariableName(entry.variable_slot),
                        /*run_seed=*/7000, config_hash);
    row.Add("models", static_cast<double>(models.size()));
    row.Add("selected_pct", entry.selected_pct);
    row.Add("correlated_pct", entry.correlated_pct);
    row.Add("inversely_correlated_pct", entry.inversely_correlated_pct);
    row.Add("uncorrelated_pct", entry.uncorrelated_pct);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_selectivity.json", "selectivity",
                        options.threads, rows);
  return 0;
}
