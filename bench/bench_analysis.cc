// Micro-benchmarks of the static-analysis layer (interval evaluation,
// expression linting, grammar diagnostics, the reject-gate verdict) plus a
// population-level cost/benefit run summarized into BENCH_analysis.json:
// evaluating a fault-seeded population with the gate off vs on shows the
// reject rate and the integrator time the gate saves.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "analysis/grammar_lint.h"
#include "analysis/interval.h"
#include "analysis/lint.h"
#include "analysis/static_gate.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/river_grammar.h"
#include "gp/evaluator.h"
#include "gp/parameter_prior.h"
#include "river/biology.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace {

using namespace gmr;

/// A candidate whose phenotype provably saturates the clamp:
/// dB_Phy/dt = 1e9 * B_Phy >= 1e7 over the whole state domain.
std::vector<expr::ExprPtr> DivergentEquations() {
  return {expr::Mul(expr::Constant(1e9),
                    expr::Variable(river::kBPhy, "B_Phy")),
          expr::Constant(0.0)};
}

analysis::LintOptions RiverLintOptions() {
  analysis::LintOptions options;
  options.num_states = 2;
  options.variable_names = river::VariableNames();
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    options.parameter_names.push_back(river::ParameterName(slot));
  }
  return options;
}

void BM_StaticAnalysisExpert(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::StaticGateConfig gate =
      river::MakeStaticGate(river::SimulationConfig{}, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AnalyzeCandidate(equations, gate));
  }
}
BENCHMARK(BM_StaticAnalysisExpert);

void BM_StaticAnalysisDivergent(benchmark::State& state) {
  const auto equations = DivergentEquations();
  const analysis::StaticGateConfig gate =
      river::MakeStaticGate(river::SimulationConfig{}, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AnalyzeCandidate(equations, gate));
  }
}
BENCHMARK(BM_StaticAnalysisDivergent);

void BM_LintEquations(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::DomainEnv env = river::LintDomains();
  const analysis::LintOptions options = RiverLintOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::LintEquations(equations, env, options));
  }
}
BENCHMARK(BM_LintEquations);

void BM_GrammarLint(benchmark::State& state) {
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::LintGrammar(knowledge.grammar));
  }
}
BENCHMARK(BM_GrammarLint);

/// Population-level gate cost/benefit: evaluate the same fault-seeded
/// population (clean random candidates plus provably divergent ones) with
/// the gate off and on, and report the wall time, the reject rate, and the
/// integrator work skipped.
void WriteAnalysisBench() {
  core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  river::SyntheticConfig synth;
  synth.years = 2;
  synth.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(synth);
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset, sim);

  // Each divergent candidate is structurally distinct (different constant)
  // so the tree cache cannot collapse them, and saturates steadily rather
  // than instantly so the gate-off run pays the full watchdog containment
  // cost (JIT compile + ~max_saturated_substeps of integration each).
  constexpr int kClean = 48;
  constexpr int kDivergent = 16;
  std::vector<int> divergent_alphas;
  for (int i = 0; i < kDivergent; ++i) {
    std::vector<tag::TagNodePtr> system;
    system.push_back(tag::FromExpr(
        expr::Add(expr::Constant(25000.0 + i),
                  expr::Variable(river::kBPhy, "B_Phy")),
        tag::kExpSymbol));
    system.push_back(tag::FromExpr(expr::Constant(0.0), tag::kExpSymbol));
    divergent_alphas.push_back(knowledge.grammar.AddAlphaTree(
        tag::ElementaryTree("divergent" + std::to_string(i),
                            tag::SystemNode(std::move(system)))));
  }

  Rng rng(1234);
  std::vector<gp::Individual> population;
  for (int i = 0; i < kClean; ++i) {
    gp::Individual individual;
    individual.genotype =
        tag::GrowRandom(knowledge.grammar, 0, 6 + i % 8, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    population.push_back(std::move(individual));
  }
  for (int alpha : divergent_alphas) {
    gp::Individual individual;
    individual.genotype =
        tag::NewSeedDerivation(knowledge.grammar, alpha, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    population.push_back(std::move(individual));
  }

  std::vector<bench::BenchRow> rows;
  for (const bool gate_on : {false, true}) {
    gp::SpeedupConfig config;
    config.tree_caching = true;
    config.short_circuiting = true;
    if (gate_on) config.static_gate = river::MakeStaticGate(sim, &dataset);
    gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
    Timer timer;
    for (gp::Individual& individual : population) {
      gp::Individual copy = individual.Clone();
      evaluator.Evaluate(&copy);
    }
    const double seconds = timer.ElapsedSeconds();
    const gp::EvalStats& stats = evaluator.stats();
    bench::BenchRow row(gate_on ? "gate_on" : "gate_off", /*run_seed=*/1234,
                        bench::ConfigHasher()
                            .Add("gate", gate_on)
                            .Add("tree_caching", config.tree_caching)
                            .Add("short_circuiting", config.short_circuiting)
                            .hash());
    row.Add("gate", gate_on ? 1.0 : 0.0);
    row.Add("population", static_cast<double>(population.size()));
    row.Add("seconds", seconds);
    row.Add("static_rejects", static_cast<double>(stats.static_rejects));
    row.Add("reject_rate", static_cast<double>(stats.static_rejects) /
                               static_cast<double>(population.size()));
    row.Add("time_steps_evaluated",
            static_cast<double>(stats.time_steps_evaluated));
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_analysis.json", "analysis", 1, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteAnalysisBench();
  return 0;
}
