// Micro-benchmarks of the static-analysis layer (interval evaluation,
// expression linting, grammar diagnostics, the reject-gate verdict) plus a
// population-level cost/benefit run summarized into BENCH_analysis.json:
// evaluating a fault-seeded population with the gate off vs on shows the
// reject rate and the integrator time the gate saves.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "analysis/activity.h"
#include "analysis/grammar_lint.h"
#include "analysis/interval.h"
#include "analysis/lint.h"
#include "analysis/sign.h"
#include "analysis/static_gate.h"
#include "analysis/units.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/river_grammar.h"
#include "gp/evaluator.h"
#include "gp/parameter_prior.h"
#include "river/biology.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace {

using namespace gmr;

/// A candidate whose phenotype provably saturates the clamp:
/// dB_Phy/dt = 1e9 * B_Phy >= 1e7 over the whole state domain.
std::vector<expr::ExprPtr> DivergentEquations() {
  return {expr::Mul(expr::Constant(1e9),
                    expr::Variable(river::kBPhy, "B_Phy")),
          expr::Constant(0.0)};
}

analysis::LintOptions RiverLintOptions() {
  analysis::LintOptions options;
  options.num_states = 2;
  options.variable_names = river::VariableNames();
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    options.parameter_names.push_back(river::ParameterName(slot));
  }
  return options;
}

void BM_StaticAnalysisExpert(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::StaticGateConfig gate =
      river::MakeStaticGate(river::SimulationConfig{}, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AnalyzeCandidate(equations, gate));
  }
}
BENCHMARK(BM_StaticAnalysisExpert);

void BM_StaticAnalysisDivergent(benchmark::State& state) {
  const auto equations = DivergentEquations();
  const analysis::StaticGateConfig gate =
      river::MakeStaticGate(river::SimulationConfig{}, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AnalyzeCandidate(equations, gate));
  }
}
BENCHMARK(BM_StaticAnalysisDivergent);

void BM_LintEquations(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::DomainEnv env = river::LintDomains();
  const analysis::LintOptions options = RiverLintOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::LintEquations(equations, env, options));
  }
}
BENCHMARK(BM_LintEquations);

void BM_GrammarLint(benchmark::State& state) {
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::LintGrammar(knowledge.grammar));
  }
}
BENCHMARK(BM_GrammarLint);

void BM_UnitsPass(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::UnitsEnv env = river::RiverUnitsEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AnalyzeSystemUnits(equations, env));
  }
}
BENCHMARK(BM_UnitsPass);

void BM_SignPass(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::DomainEnv env = river::LintDomains();
  for (auto _ : state) {
    for (const expr::ExprPtr& eq : equations) {
      benchmark::DoNotOptimize(analysis::CheckMassBalance(*eq, env));
    }
  }
}
BENCHMARK(BM_SignPass);

void BM_ActivityPass(benchmark::State& state) {
  const auto equations = river::ManualProcess();
  const analysis::DomainEnv env = river::LintDomains();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::OutputClosureActivity(equations, river::kBPhy, env));
  }
}
BENCHMARK(BM_ActivityPass);

void BM_GrammarDimensions(benchmark::State& state) {
  const core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  const analysis::UnitsEnv env = river::RiverUnitsEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::AnalyzeGrammarDimensions(knowledge.grammar, env));
  }
}
BENCHMARK(BM_GrammarDimensions);

/// Population-level gate cost/benefit: evaluate the same fault-seeded
/// population (clean random candidates plus provably divergent ones) with
/// the gate off and on, and report the wall time, the reject rate, and the
/// integrator work skipped.
void WriteAnalysisBench() {
  core::RiverPriorKnowledge knowledge = core::BuildRiverPriorKnowledge();
  river::SyntheticConfig synth;
  synth.years = 2;
  synth.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(synth);
  const river::SimulationConfig sim;
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset, sim);

  // Each divergent candidate is structurally distinct (different constant)
  // so the tree cache cannot collapse them, and saturates steadily rather
  // than instantly so the gate-off run pays the full watchdog containment
  // cost (JIT compile + ~max_saturated_substeps of integration each).
  constexpr int kClean = 48;
  constexpr int kDivergent = 16;
  std::vector<int> divergent_alphas;
  for (int i = 0; i < kDivergent; ++i) {
    std::vector<tag::TagNodePtr> system;
    system.push_back(tag::FromExpr(
        expr::Add(expr::Constant(25000.0 + i),
                  expr::Variable(river::kBPhy, "B_Phy")),
        tag::kExpSymbol));
    system.push_back(tag::FromExpr(expr::Constant(0.0), tag::kExpSymbol));
    divergent_alphas.push_back(knowledge.grammar.AddAlphaTree(
        tag::ElementaryTree("divergent" + std::to_string(i),
                            tag::SystemNode(std::move(system)))));
  }

  Rng rng(1234);
  std::vector<gp::Individual> population;
  for (int i = 0; i < kClean; ++i) {
    gp::Individual individual;
    individual.genotype =
        tag::GrowRandom(knowledge.grammar, 0, 6 + i % 8, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    population.push_back(std::move(individual));
  }
  for (int alpha : divergent_alphas) {
    gp::Individual individual;
    individual.genotype =
        tag::NewSeedDerivation(knowledge.grammar, alpha, rng);
    individual.parameters = gp::PriorMeans(knowledge.priors);
    population.push_back(std::move(individual));
  }

  std::vector<bench::BenchRow> rows;
  for (const bool gate_on : {false, true}) {
    gp::SpeedupConfig config;
    config.tree_caching = true;
    config.short_circuiting = true;
    if (gate_on) config.static_gate = river::MakeStaticGate(sim, &dataset);
    gp::FitnessEvaluator evaluator(&knowledge.grammar, &fitness, config);
    Timer timer;
    for (gp::Individual& individual : population) {
      gp::Individual copy = individual.Clone();
      evaluator.Evaluate(&copy);
    }
    const double seconds = timer.ElapsedSeconds();
    const gp::EvalStats& stats = evaluator.stats();
    bench::BenchRow row(gate_on ? "gate_on" : "gate_off", /*run_seed=*/1234,
                        bench::ConfigHasher()
                            .Add("gate", gate_on)
                            .Add("tree_caching", config.tree_caching)
                            .Add("short_circuiting", config.short_circuiting)
                            .hash());
    row.Add("gate", gate_on ? 1.0 : 0.0);
    row.Add("population", static_cast<double>(population.size()));
    row.Add("seconds", seconds);
    row.Add("static_rejects", static_cast<double>(stats.static_rejects));
    row.Add("reject_rate", static_cast<double>(stats.static_rejects) /
                               static_cast<double>(population.size()));
    row.Add("time_steps_evaluated",
            static_cast<double>(stats.time_steps_evaluated));
    row.Add("verdict_cache_lookups",
            static_cast<double>(stats.verdict_cache_lookups));
    row.Add("verdict_cache_hits",
            static_cast<double>(stats.verdict_cache_hits));
    for (std::size_t r = 1; r < analysis::kNumGateRules; ++r) {
      row.Add(std::string("gate_rule.") +
                  analysis::GateRuleName(static_cast<analysis::GateRule>(r)),
              static_cast<double>(stats.gate_rule_rejects[r]));
    }
    rows.push_back(std::move(row));
  }

  // Per-pass gate throughput: AnalyzeCandidate calls per second on the
  // expert process as each opt-in pass is stacked onto the interval base.
  {
    constexpr int kReps = 2000;
    const auto equations = river::ManualProcess();
    struct PassConfig {
      const char* name;
      bool units;
      bool sign;
    };
    for (const PassConfig pass : {PassConfig{"interval", false, false},
                                  PassConfig{"interval+units", true, false},
                                  PassConfig{"interval+sign", false, true},
                                  PassConfig{"all", true, true}}) {
      analysis::StaticGateConfig gate =
          river::MakeStaticGate(sim, &dataset);
      gate.check_units = pass.units;
      if (pass.units) gate.units = river::RiverUnitsEnv();
      gate.check_sign = pass.sign;
      Timer timer;
      for (int i = 0; i < kReps; ++i) {
        benchmark::DoNotOptimize(analysis::AnalyzeCandidate(equations, gate));
      }
      const double seconds = timer.ElapsedSeconds();
      bench::BenchRow row(std::string("gate_pass_") + pass.name,
                          /*run_seed=*/1234,
                          bench::ConfigHasher()
                              .Add("units", pass.units)
                              .Add("sign", pass.sign)
                              .Add("reps", kReps)
                              .hash());
      row.Add("reps", static_cast<double>(kReps));
      row.Add("seconds", seconds);
      row.Add("candidates_per_sec",
              seconds > 0.0 ? static_cast<double>(kReps) / seconds : 0.0);
      rows.push_back(std::move(row));
    }
  }

  // Grammar-level dimension pruning rate: the builtin river grammar prunes
  // nothing (its extender contexts are polymorphic); a copy extended with
  // deliberately dimension-inconsistent betas prunes exactly those.
  {
    core::RiverPriorKnowledge pristine = core::BuildRiverPriorKnowledge();
    const analysis::UnitsEnv env = river::RiverUnitsEnv();
    Timer timer;
    const std::vector<int> pruned_builtin =
        analysis::PruneDimensionInconsistentBetas(&pristine.grammar, env);
    const double builtin_seconds = timer.ElapsedSeconds();

    core::RiverPriorKnowledge seeded = core::BuildRiverPriorKnowledge();
    // Root the defect betas at an alpha-resident label by giving the seeded
    // grammar an extra alpha with a dimension-pinned label, then attach
    // betas whose operand subtree mismatches internally (Θ + L).
    seeded.grammar.AddAlphaTree(tag::ElementaryTree(
        "pinned", tag::FromExpr(
                      expr::Add(expr::Variable(river::kBPhy, "B_Phy"),
                                expr::Variable(river::kVn, "V_n")),
                      "Pinned")));
    constexpr int kBadBetas = 4;
    for (int i = 0; i < kBadBetas; ++i) {
      std::vector<tag::TagNodePtr> children;
      children.push_back(tag::FootNode("Pinned"));
      children.push_back(
          tag::FromExpr(expr::Add(expr::Variable(river::kVtmp, "V_tmp"),
                                  expr::Variable(river::kVsd, "V_sd")),
                        ""));
      seeded.grammar.AddBetaTree(tag::ElementaryTree(
          "bad" + std::to_string(i),
          tag::OperatorNode("Pinned", expr::NodeKind::kAdd,
                            std::move(children))));
    }
    const std::size_t total = seeded.grammar.num_beta_trees();
    const std::vector<int> pruned_seeded =
        analysis::PruneDimensionInconsistentBetas(&seeded.grammar, env);

    bench::BenchRow row("grammar_pruning", /*run_seed=*/1234,
                        bench::ConfigHasher()
                            .Add("bad_betas", kBadBetas)
                            .hash());
    row.Add("builtin_betas",
            static_cast<double>(pristine.grammar.num_beta_trees()));
    row.Add("builtin_pruned", static_cast<double>(pruned_builtin.size()));
    row.Add("builtin_seconds", builtin_seconds);
    row.Add("seeded_betas", static_cast<double>(total));
    row.Add("seeded_pruned", static_cast<double>(pruned_seeded.size()));
    row.Add("pruning_rate", total > 0
                                ? static_cast<double>(pruned_seeded.size()) /
                                      static_cast<double>(total)
                                : 0.0);
    rows.push_back(std::move(row));
  }

  bench::WriteBenchJson("BENCH_analysis.json", "analysis", 1, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteAnalysisBench();
  return 0;
}
