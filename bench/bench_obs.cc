// Telemetry overhead on the search hot path: identical GMR runs under the
// default NullSink (tracing off — every emission site short-circuits on
// `enabled()`) and under a buffered JsonlTraceSink writing a full trace.
// Results land in BENCH_obs.json; the NullSink row's overhead versus the
// baseline pass is the "instrumentation is free when off" guarantee
// (target: within measurement noise, <= 2%).
//
// The JSONL pass leaves its trace on disk (--trace PATH, default
// BENCH_obs_trace.jsonl) so `gmr_trace` can summarize a real run.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "obs/telemetry.h"

namespace {

using namespace gmr;

struct Pass {
  double seconds = 0.0;
  double best_fitness = 0.0;
  double events = 0.0;
};

Pass RunOnce(const core::GmrConfig& config, const core::GmrProblem& problem,
             obs::TelemetrySink* sink) {
  obs::RunContext context;
  context.sink = sink;
  Timer timer;
  const core::GmrRunResult result = core::RunGmr(config, problem, context);
  Pass pass;
  pass.seconds = timer.ElapsedSeconds();
  pass.best_fitness = result.best.fitness;
  return pass;
}

/// Minimum wall-clock over `repeats` identical runs — the least-noise
/// estimator for a deterministic workload. A non-empty `trace_path` runs
/// with a fresh JsonlTraceSink per repeat (the file is rewritten each
/// time, so the last repeat's trace survives); empty runs with the default
/// NullSink.
Pass BestOf(int repeats, const core::GmrConfig& config,
            const core::GmrProblem& problem, const std::string& trace_path) {
  Pass best;
  for (int r = 0; r < repeats; ++r) {
    std::unique_ptr<obs::JsonlTraceSink> sink;
    if (!trace_path.empty()) {
      sink = std::make_unique<obs::JsonlTraceSink>(trace_path);
    }
    Pass pass = RunOnce(config, problem, sink.get());
    if (sink != nullptr) {
      pass.events = static_cast<double>(sink->events_emitted());
    }
    if (r == 0 || pass.seconds < best.seconds) {
      pass.events = std::max(best.events, pass.events);
      best = pass;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::Scale scale = bench::Scale::FromEnvironment();
  scale.population = std::min(scale.population, 30);
  scale.generations = std::min(scale.generations, 10);
  scale.local_search_steps = 2;

  const river::RiverDataset dataset = bench::MakeDataset(scale);
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  const core::GmrProblem problem{&dataset, &knowledge};

  core::GmrConfig config = bench::MakeGmrConfig(scale, /*seed=*/5);
  config.tag3p.speedups.num_threads = options.threads;
  const std::uint64_t config_hash = bench::HashGmrConfig(config);

  const std::string trace_path = options.trace_path.empty()
                                     ? "BENCH_obs_trace.jsonl"
                                     : options.trace_path;
  constexpr int kRepeats = 3;

  std::printf("[obs] telemetry sink overhead, population %d x %d "
              "generations, best of %d runs each\n\n",
              config.tag3p.population_size, config.tag3p.max_generations,
              kRepeats);

  // Warm allocator/JIT caches before timing anything.
  RunOnce(config, problem, nullptr);

  const Pass baseline = BestOf(kRepeats, config, problem, "");
  const Pass null_pass = BestOf(kRepeats, config, problem, "");
  const Pass jsonl_pass = BestOf(kRepeats, config, problem, trace_path);

  const auto overhead_pct = [&](const Pass& pass) {
    return 100.0 * (pass.seconds - baseline.seconds) / baseline.seconds;
  };

  std::printf("%-12s %12s %12s %14s\n", "sink", "seconds", "overhead%",
              "best fitness");
  std::printf("%-12s %12.3f %12s %14.6f\n", "baseline", baseline.seconds,
              "-", baseline.best_fitness);
  std::printf("%-12s %12.3f %11.2f%% %14.6f\n", "null", null_pass.seconds,
              overhead_pct(null_pass), null_pass.best_fitness);
  std::printf("%-12s %12.3f %11.2f%% %14.6f  (%.0f events -> %s)\n", "jsonl",
              jsonl_pass.seconds, overhead_pct(jsonl_pass),
              jsonl_pass.best_fitness, jsonl_pass.events,
              trace_path.c_str());

  // The sink must observe, not perturb: the search trajectory is identical
  // with tracing on or off.
  const bool identical =
      baseline.best_fitness == null_pass.best_fitness &&
      baseline.best_fitness == jsonl_pass.best_fitness;
  std::printf("\n[obs] sink-on vs sink-off trajectory: %s\n",
              identical ? "IDENTICAL" : "DIVERGED");

  std::vector<bench::BenchRow> rows;
  {
    bench::BenchRow row("baseline", config.tag3p.seed, config_hash);
    row.Add("seconds", baseline.seconds);
    row.Add("best_fitness", baseline.best_fitness);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("null_sink", config.tag3p.seed, config_hash);
    row.Add("seconds", null_pass.seconds);
    row.Add("overhead_pct", overhead_pct(null_pass));
    row.Add("best_fitness", null_pass.best_fitness);
    row.Add("identical_trajectory", identical ? 1 : 0);
    rows.push_back(std::move(row));
  }
  {
    bench::BenchRow row("jsonl_sink", config.tag3p.seed, config_hash);
    row.Add("seconds", jsonl_pass.seconds);
    row.Add("overhead_pct", overhead_pct(jsonl_pass));
    row.Add("best_fitness", jsonl_pass.best_fitness);
    row.Add("events", jsonl_pass.events);
    row.Add("identical_trajectory", identical ? 1 : 0);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_obs.json", "obs", options.threads, rows);
  return identical ? 0 : 1;
}
