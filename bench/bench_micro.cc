// Micro-benchmarks (google-benchmark) of the hot paths behind the Figure 10
// speedups: expression evaluation through both backends, algebraic
// simplification, TAG expansion, hydrological routing, and the genetic
// operators — plus the divergence-watchdog containment cost/benefit, which
// is also summarized into BENCH_fault.json by the custom main.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/river_grammar.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "expr/simplify.h"
#include "gp/operators.h"
#include "river/biology.h"
#include "river/network.h"
#include "river/parameters.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace {

using namespace gmr;

std::vector<double> BenchVariables() {
  std::vector<double> vars(river::kNumVariables, 1.0);
  vars[river::kBPhy] = 10.0;
  vars[river::kBZoo] = 2.0;
  vars[river::kVlgt] = 20.0;
  vars[river::kVtmp] = 18.0;
  vars[river::kVn] = 2.0;
  vars[river::kVp] = 0.05;
  vars[river::kVsi] = 3.0;
  return vars;
}

void BM_EvalInterpreted(benchmark::State& state) {
  const auto equation = river::PhytoplanktonDerivative();
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const auto vars = BenchVariables();
  expr::EvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = vars.size();
  ctx.parameters = params.data();
  ctx.num_parameters = params.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::EvalExpr(*equation, ctx));
  }
}
BENCHMARK(BM_EvalInterpreted);

void BM_EvalCompiled(benchmark::State& state) {
  const auto equation = river::PhytoplanktonDerivative();
  const auto program = expr::Compile(*equation);
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const auto vars = BenchVariables();
  expr::EvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = vars.size();
  ctx.parameters = params.data();
  ctx.num_parameters = params.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.Run(ctx));
  }
}
BENCHMARK(BM_EvalCompiled);

void BM_EvalJit(benchmark::State& state) {
  // True runtime compilation (cc + dlopen), the paper's actual RC
  // mechanism. Skipped when no compiler is on the system.
  if (!expr::JitAvailable()) {
    state.SkipWithError("no C compiler");
    return;
  }
  const auto equation = river::PhytoplanktonDerivative();
  std::string error;
  const auto program = expr::JitProgram::Compile(*equation, &error);
  if (program == nullptr) {
    state.SkipWithError(error.c_str());
    return;
  }
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const auto vars = BenchVariables();
  expr::EvalContext ctx;
  ctx.variables = vars.data();
  ctx.num_variables = vars.size();
  ctx.parameters = params.data();
  ctx.num_parameters = params.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(program->Run(ctx));
  }
}
BENCHMARK(BM_EvalJit);

void BM_Compile(benchmark::State& state) {
  const auto equation = river::PhytoplanktonDerivative();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::Compile(*equation));
  }
}
BENCHMARK(BM_Compile);

void BM_Simplify(benchmark::State& state) {
  const auto equation = river::PhytoplanktonDerivative();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::Simplify(equation));
  }
}
BENCHMARK(BM_Simplify);

void BM_TagExpand(benchmark::State& state) {
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  Rng rng(3);
  const tag::DerivationPtr genotype = tag::GrowRandom(
      knowledge.grammar, knowledge.seed_alpha_index,
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tag::ExpandToExpressions(knowledge.grammar, *genotype));
  }
}
BENCHMARK(BM_TagExpand)->Arg(4)->Arg(16)->Arg(50);

void BM_GeneticOperators(benchmark::State& state) {
  const core::RiverPriorKnowledge knowledge =
      core::BuildRiverPriorKnowledge();
  Rng rng(5);
  gp::Individual a;
  a.genotype = tag::GrowRandom(knowledge.grammar, 0, 12, rng);
  a.parameters = gp::PriorMeans(knowledge.priors);
  gp::Individual b;
  b.genotype = tag::GrowRandom(knowledge.grammar, 0, 12, rng);
  b.parameters = a.parameters;
  const gp::SizeBounds bounds{2, 50};
  for (auto _ : state) {
    gp::Individual ca = a.Clone();
    gp::Individual cb = b.Clone();
    benchmark::DoNotOptimize(
        gp::Crossover(knowledge.grammar, bounds, 5, &ca, &cb, rng));
    gp::GaussianMutation(knowledge.priors, 1.0, &ca, rng);
  }
}
BENCHMARK(BM_GeneticOperators);

void BM_SimulateYear(benchmark::State& state) {
  river::SyntheticConfig config;
  config.years = 2;
  config.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(config);
  const auto equations = river::ManualProcess();
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const bool compiled = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(river::SimulateBPhy(
        equations, params, dataset, 0, 365, 5.0, 1.0,
        river::SimulationConfig{}, compiled));
  }
}
BENCHMARK(BM_SimulateYear)->Arg(0)->Arg(1);

/// A structurally plausible but explosive candidate of the kind TAG3P
/// routinely generates: finite derivatives that pin B_Phy to the ceiling
/// every substep, so only the clamp-saturation watchdog can cut it short.
std::vector<expr::ExprPtr> DivergentProcess() {
  return {expr::Mul(expr::Constant(1e6),
                    expr::Variable(river::kBPhy, "B_Phy")),
          expr::Constant(0.0)};
}

river::SimulationConfig WatchdogConfig(bool watchdogs_on) {
  river::SimulationConfig config;
  if (!watchdogs_on) {
    config.max_nonfinite_derivatives = 0;
    config.max_saturated_substeps = 0;
  }
  return config;
}

void BM_SimulateDivergent(benchmark::State& state) {
  // Arg 0: watchdogs disabled (the pre-containment behavior — every
  // divergent candidate pays the full rollout). Arg 1: watchdogs on.
  river::SyntheticConfig synth;
  synth.years = 2;
  synth.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(synth);
  const auto equations = DivergentProcess();
  const auto params = gp::PriorMeans(river::RiverParameterPriors());
  const river::SimulationConfig config = WatchdogConfig(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(river::SimulateBPhy(
        equations, params, dataset, 0, 365, 5.0, 1.0, config, true));
  }
}
BENCHMARK(BM_SimulateDivergent)->Arg(0)->Arg(1);

void BM_HydrologyRoute(benchmark::State& state) {
  const river::RiverNetwork network = river::RiverNetwork::Nakdong();
  const std::size_t days = static_cast<std::size_t>(state.range(0));
  river::HydrologicalProcess::Input input;
  input.attributes.resize(network.num_stations());
  input.rainfall.resize(network.num_stations());
  input.base_flow.assign(network.num_stations(), 0.0);
  for (std::size_t s = 0; s < network.num_stations(); ++s) {
    if (network.station(static_cast<int>(s)).is_virtual) continue;
    input.attributes[s].assign(10, std::vector<double>(days, 1.0));
    input.rainfall[s].assign(days, 1.0);
    input.base_flow[s] = 10.0;
  }
  const river::HydrologicalProcess hydrology(&network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hydrology.Route(input));
  }
}
BENCHMARK(BM_HydrologyRoute)->Arg(365)->Arg(1825);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    river::SyntheticConfig config;
    config.years = 2;
    config.train_years = 1;
    benchmark::DoNotOptimize(river::GenerateNakdongLike(config));
  }
}
BENCHMARK(BM_SyntheticGeneration);

/// Measures the divergent-candidate rollout with and without watchdogs and
/// writes the containment summary to BENCH_fault.json: substeps actually
/// integrated, where the abort happened, and the wall-clock per rollout.
void WriteFaultBench() {
  river::SyntheticConfig synth;
  synth.years = 2;
  synth.train_years = 1;
  const river::RiverDataset dataset = river::GenerateNakdongLike(synth);
  const auto equations = DivergentProcess();
  const auto params = gp::PriorMeans(river::RiverParameterPriors());

  std::vector<bench::BenchRow> rows;
  for (const bool watchdogs_on : {false, true}) {
    const river::SimulationConfig config = WatchdogConfig(watchdogs_on);
    river::SimulationReport report;
    constexpr int kRepeats = 50;
    Timer timer;
    for (int r = 0; r < kRepeats; ++r) {
      river::SimulateBPhy(equations, params, dataset, 0, 365, 5.0, 1.0,
                          config, true, &report);
    }
    const double seconds = timer.ElapsedSeconds() / kRepeats;
    bench::BenchRow row(watchdogs_on ? "watchdogs_on" : "watchdogs_off",
                        synth.seed,
                        bench::ConfigHasher()
                            .Add("watchdogs", watchdogs_on)
                            .Add("days", 365)
                            .Add("repeats", kRepeats)
                            .hash());
    row.Add("watchdogs", watchdogs_on ? 1.0 : 0.0);
    row.Add("substeps_used", static_cast<double>(report.substeps_used));
    row.Add("days_before_abort",
            static_cast<double>(report.days_before_abort));
    row.Add("aborted", report.aborted ? 1.0 : 0.0);
    row.Add("clamp_saturations",
            static_cast<double>(report.clamp_saturations));
    row.Add("seconds_per_rollout", seconds);
    rows.push_back(std::move(row));
  }
  bench::WriteBenchJson("BENCH_fault.json", "fault", 1, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteFaultBench();
  return 0;
}
