// Multi-constituent transport throughput: how the batched rollout backends
// scale with the state-vector width (1/2/5 species) and how the two
// advection schemes (upwind/QUICK) price the 1D channel. Station rollouts
// run BatchSimulate at a fixed lane width; channel rollouts run
// SimulateChannel, whose cells are the lanes.
//
// Emits BENCH_transport.json (shared bench schema v2); every row carries a
// `num_species` stat so the state-vector-width sweep is joinable against
// BENCH_batch.json's lane-width sweep offline.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "river/chemistry.h"
#include "river/constituents.h"
#include "river/simulate.h"
#include "river/synthetic.h"
#include "river/transport.h"

namespace {

using gmr::Timer;
using gmr::river::AdvectionScheme;
using gmr::river::ChannelConfig;
using gmr::river::CompiledBackend;
using gmr::river::ConstituentSet;
using gmr::river::SimulationConfig;
using gmr::river::TransportScenario;

constexpr int kSpeciesCounts[] = {1, 2, 5};
constexpr AdvectionScheme kSchemes[] = {AdvectionScheme::kUpwind,
                                        AdvectionScheme::kQuick};

/// Best wall-clock of `trials` runs of `body` — the usual best-of-N
/// defense against scheduler noise on the 1-CPU container.
template <typename Body>
double BestSeconds(int trials, const Body& body) {
  double best = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    Timer timer;
    body();
    const double seconds = timer.ElapsedSeconds();
    if (trial == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmr;
  const bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const bench::Scale scale = bench::Scale::FromEnvironment();

  river::SyntheticConfig synth;
  synth.years = scale.data_years;
  synth.train_years = scale.train_years;
  synth.seed = scale.data_seed;

  bench::ConfigHasher hasher;
  hasher.Add("data_years", scale.data_years);
  hasher.Add("train_years", scale.train_years);
  const std::uint64_t config_hash = hasher.hash();
  std::vector<bench::BenchRow> rows;

  // ------------------------------------- station rollouts vs species count
  // Fixed lane width, growing state vector: the SoA lane blocks span
  // species x lanes, so the per-substep work grows linearly with the
  // species count while the dispatch overhead stays per-equation.
  const std::size_t width = 8;
  const std::size_t lane_volume = 64;
  const int trials = 3;

  std::printf("[bench_transport] station batch rollouts, width %zu\n\n",
              width);
  std::printf("%-10s %-10s %16s %18s\n", "species", "backend",
              "lane-days/sec", "eq-lane-days/sec");

  for (const int num_species : kSpeciesCounts) {
    const TransportScenario scenario =
        river::GenerateTransportScenario(synth, num_species);
    const auto equations = river::TransportProcess(scenario.constituents);
    const std::vector<double> initial =
        scenario.constituents.InitialStates();
    const std::size_t days = scenario.dataset.train_end;

    std::vector<std::vector<double>> lanes;
    for (std::size_t l = 0; l < width; ++l) {
      lanes.push_back(scenario.true_parameters);
      for (double& p : lanes.back()) {
        p *= 1.0 + 0.02 * static_cast<double>(l);
      }
    }

    for (const CompiledBackend backend :
         {CompiledBackend::kBatchVm, CompiledBackend::kBatchJit}) {
      SimulationConfig config;
      config.num_species = num_species;
      config.compiled_backend = backend;
      const char* backend_name =
          backend == CompiledBackend::kBatchVm ? "batch-vm" : "batch-jit";

      const std::size_t repeats = lane_volume / width;
      const double seconds = BestSeconds(trials, [&] {
        for (std::size_t r = 0; r < repeats; ++r) {
          const auto result = river::BatchSimulate(
              equations, lanes, scenario.dataset, 0, days,
              scenario.constituents, initial, config);
          if (result.num_species !=
              static_cast<std::size_t>(num_species)) {
            std::abort();
          }
        }
      });
      const double lane_days =
          static_cast<double>(lane_volume) * static_cast<double>(days);
      const double rate = lane_days / seconds;
      std::printf("%-10d %-10s %16.0f %18.0f\n", num_species, backend_name,
                  rate, rate * num_species);

      bench::BenchRow row(
          std::string("station_") + backend_name + "_s" +
              std::to_string(num_species),
          3, config_hash);
      row.Add("num_species", static_cast<double>(num_species));
      row.Add("batch_width", static_cast<double>(width));
      row.Add("days", static_cast<double>(days));
      row.Add("lane_days_per_sec", rate);
      row.Add("equation_lane_days_per_sec", rate * num_species);
      rows.push_back(std::move(row));
    }
  }

  // --------------------------------------- channel rollouts scheme sweep
  // The reach prices an extra flux evaluation per interface; QUICK's wider
  // stencil costs a little more per interface than upwind. Cells are the
  // lanes of the batched backend, so throughput reports cell-days/sec.
  const int num_cells = 16;
  std::printf("\n[bench_transport] channel rollouts, %d cells\n\n",
              num_cells);
  std::printf("%-10s %-10s %16s %14s\n", "species", "scheme",
              "cell-days/sec", "max residual");

  for (const int num_species : kSpeciesCounts) {
    const TransportScenario scenario =
        river::GenerateTransportScenario(synth, num_species);
    const auto equations = river::TransportProcess(scenario.constituents);
    const std::size_t days = scenario.dataset.train_end;
    SimulationConfig config;
    config.num_species = num_species;

    for (const AdvectionScheme scheme : kSchemes) {
      ChannelConfig channel;
      channel.num_cells = num_cells;
      channel.scheme = scheme;

      double max_residual = 0.0;
      const double seconds = BestSeconds(trials, [&] {
        const auto result = river::SimulateChannel(
            equations, scenario.true_parameters, scenario.dataset, 0, days,
            scenario.constituents, config, channel);
        max_residual = 0.0;
        for (const auto& budget : result.budgets) {
          max_residual =
              std::fmax(max_residual, std::fabs(budget.Residual()));
        }
      });
      const double cell_days =
          static_cast<double>(num_cells) * static_cast<double>(days);
      const double rate = cell_days / seconds;
      const char* scheme_name = river::AdvectionSchemeName(scheme);
      std::printf("%-10d %-10s %16.0f %14.3g\n", num_species, scheme_name,
                  rate, max_residual);

      bench::BenchRow row(
          std::string("channel_") + scheme_name + "_s" +
              std::to_string(num_species),
          3, config_hash);
      row.Add("num_species", static_cast<double>(num_species));
      row.Add("num_cells", static_cast<double>(num_cells));
      row.Add("days", static_cast<double>(days));
      row.Add("cell_days_per_sec", rate);
      row.Add("max_mass_residual", max_residual);
      rows.push_back(std::move(row));
    }
  }

  bench::WriteBenchJson("BENCH_transport.json", "transport", options.threads,
                        rows);
  std::printf("\nwrote BENCH_transport.json\n");
  return 0;
}
